"""The campaign worker: drain cells until the queue is dry.

One worker is one host process (usually spawned as ``python -m
repro.campaign worker <id>``; ``--workers 0`` runs one inline). The
drain loop:

1. **claim** — walk the cells in manifest order and take the first
   claimable one: ``pending``; ``failed`` whose backoff window has
   expired (and with attempts left); or ``leased`` with a stale
   heartbeat whose flock can actually be acquired — i.e. a *stale lease
   from a dead worker*, which is stolen. Claiming = acquire the cell's
   :class:`~repro.campaign.leases.Lease`, then re-check and append the
   ``leased`` journal record under the journal lock, so the
   read-modify-append is atomic against every other worker.
2. **execute** — run the cell in a forked child process
   (:func:`_cell_main`) so a wall-clock timeout can SIGKILL a wedged
   cell without taking the worker down. The parent beats the lease
   heartbeat between joins. Warm cells are served by the
   content-addressed result cache inside the child (zero driver
   executions — this is what makes resume cheap and crash dedup free).
3. **settle** — append ``done`` (with the result's cache key) or
   ``failed`` (with a deterministic exponential backoff + jitter drawn
   from ``rng.fork(f"campaign.retry.{cell}.{n}")``, so every worker
   everywhere computes the same schedule). A cell that reaches
   ``max_attempts`` failures folds to *quarantined* and is never picked
   again — one poison cell degrades the campaign, it cannot wedge it.

The loop exits when every cell is terminal (``done``/quarantined), when
its ``--max-cells``/``--max-seconds`` slice budget is spent (LMPResume-
style max-time slicing: the journal is left resumable), or on
SIGTERM/SIGINT — in-flight work is killed and left ``leased``; the
lease flock dies with the worker, so a resume steals it without burning
a retry attempt.

Chaos-testing hook: ``REPRO_CAMPAIGN_CELL_DELAY_S`` makes every cell
child sleep before executing, giving kill-mid-cell tests a reliable
window. It is read only in the child and defaults to off.
"""
# Wall-clock reads are deliberate: the worker schedules host processes
# (timeouts, heartbeats, backoff), not simulated time.
# simlint: ignore-file[SL201]

from __future__ import annotations

import multiprocessing
import os
import pathlib
import signal
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.campaign.cells import Cell, execute_cell
from repro.campaign.journal import (
    DONE,
    FAILED,
    LEASED,
    PENDING,
    CellState,
    Journal,
)
from repro.campaign.leases import Lease, heartbeat_age
from repro.runner.cache import ResultCache
from repro.simengine.rng import fork

__all__ = ["Worker", "WorkerConfig", "retry_backoff_s"]

#: Drain-loop outcome states.
DRAINED = "drained"    # every cell terminal
SLICED = "sliced"      # slice budget spent, work remains
STOPPED = "stopped"    # SIGTERM/SIGINT


@dataclass
class WorkerConfig:
    """Knobs shared campaign-wide (stored in the manifest) plus
    per-invocation slice budgets."""

    cache_dir: str = ".repro-cache"
    max_attempts: int = 3
    cell_timeout_s: Optional[float] = None
    heartbeat_s: float = 0.5
    stale_after_s: float = 2.5
    base_backoff_s: float = 0.25
    backoff_factor: float = 2.0
    jitter: float = 0.5
    seed: Optional[int] = None
    poll_s: float = 0.2
    force: bool = False
    max_cells: Optional[int] = None
    max_seconds: Optional[float] = None

    def to_manifest(self) -> Dict[str, Any]:
        """The campaign-wide subset (slice budgets are per-invocation)."""
        return {
            "cache_dir": self.cache_dir,
            "max_attempts": self.max_attempts,
            "cell_timeout_s": self.cell_timeout_s,
            "heartbeat_s": self.heartbeat_s,
            "stale_after_s": self.stale_after_s,
            "base_backoff_s": self.base_backoff_s,
            "backoff_factor": self.backoff_factor,
            "jitter": self.jitter,
            "seed": self.seed,
        }

    @classmethod
    def from_manifest(cls, d: Dict[str, Any]) -> "WorkerConfig":
        cfg = cls()
        for key, value in d.items():
            if hasattr(cfg, key):
                setattr(cfg, key, value)
        return cfg


def retry_backoff_s(
    cell_id: str, failure_index: int, cfg: WorkerConfig
) -> float:
    """Deterministic backoff before retry ``failure_index + 1``.

    Exponential in the failure count, with multiplicative jitter drawn
    from a named RNG stream — every worker (on any host, in any order)
    computes the identical schedule for a given ``(seed, cell, n)``.
    """
    u = float(
        fork(f"campaign.retry.{cell_id}.{failure_index}", cfg.seed).random()
    )
    base = cfg.base_backoff_s * cfg.backoff_factor ** max(
        0, failure_index - 1
    )
    return base * (1.0 + cfg.jitter * u)


def _cell_main(cell_dict: Dict[str, Any], cache_dir: str, force: bool,
               conn) -> None:
    """Child-process entry: execute one cell, report through ``conn``."""
    delay = float(os.environ.get("REPRO_CAMPAIGN_CELL_DELAY_S", "0") or 0)
    if delay > 0:
        time.sleep(delay)
    try:
        run = execute_cell(
            Cell.from_dict(cell_dict), ResultCache(cache_dir), force=force
        )
    except BaseException as exc:  # noqa: BLE001 - report, then die nonzero
        try:
            conn.send({"ok": False, "error": f"{type(exc).__name__}: {exc}"})
        finally:
            conn.close()
        raise SystemExit(1)
    conn.send(
        {
            "ok": True,
            "key": run.key,
            "wall_s": run.wall_s,
            "from_cache": run.from_cache,
        }
    )
    conn.close()


@dataclass
class Claim:
    """A successfully leased cell, ready to run."""

    lease: Lease
    state: CellState
    reason: str  # "fresh" | "retry" | "steal"


@dataclass
class WorkerStats:
    """What one drain accomplished (for reports and tests)."""

    ran: int = 0
    done: int = 0
    failed: int = 0
    stolen: int = 0
    cache_hits: int = 0
    outcome: str = DRAINED
    cells: List[str] = field(default_factory=list)


class Worker:
    """Drain loop over one campaign directory."""

    def __init__(
        self,
        campaign_dir: Union[str, pathlib.Path],
        cell_list: List[Cell],
        config: WorkerConfig,
        name: Optional[str] = None,
    ) -> None:
        self.dir = pathlib.Path(campaign_dir)
        self.cells = {c.cell_id: c for c in cell_list}
        self.order = [c.cell_id for c in cell_list]
        self.cfg = config
        self.name = name or f"w-{os.getpid()}"
        self.journal = Journal(self.dir)
        self.lease_dir = self.dir / "leases"
        self._stop = False

    # -- signals ----------------------------------------------------------
    def install_signal_handlers(self) -> None:
        """Graceful stop on SIGTERM/SIGINT (CLI worker processes only)."""

        def _request_stop(signum, frame):  # pragma: no cover - signal path
            self._stop = True

        signal.signal(signal.SIGTERM, _request_stop)
        signal.signal(signal.SIGINT, _request_stop)

    # -- claiming ---------------------------------------------------------
    def _claimable(self, st: CellState, now: float) -> Optional[str]:
        """Why ``st`` can be claimed right now (``None`` if it can't)."""
        if st.state == PENDING:
            return "fresh"
        if st.state == FAILED:
            if st.failures >= self.cfg.max_attempts:
                return None  # quarantined
            if now >= st.retry_not_before:
                return "retry"
            return None
        if st.state == LEASED:
            age = heartbeat_age(self.lease_dir, st.cell_id)
            if age is None or age >= self.cfg.stale_after_s:
                return "steal"
            return None
        return None

    def _claim(self) -> Tuple[Optional["Claim"], bool]:
        """Take the first claimable cell; returns (claim, all_done).

        The lease flock is acquired *before* the journal lock, and the
        cell's state is re-read under the journal lock — the flock
        makes double-claims impossible, the re-read makes claiming a
        cell that just completed impossible.
        """
        states = self.journal.replay(self.order)
        now = time.time()
        candidates = [
            cell_id
            for cell_id in self.order
            if self._claimable(states[cell_id], now)
        ]
        if not candidates:
            all_terminal = all(
                states[c].terminal(self.cfg.max_attempts) for c in self.order
            )
            return None, all_terminal
        for cell_id in candidates:
            lease = Lease(self.lease_dir, cell_id, self.name)
            if not lease.try_acquire():
                continue  # a live owner (or a faster claimant) holds it
            with self.journal.exclusive():
                st = self.journal.replay(self.order)[cell_id]
                if st.state == LEASED:
                    # We hold the flock, so whoever journaled this lease
                    # is dead (its lock died with its fds): stealable no
                    # matter what the heartbeat file says — our own
                    # acquire just refreshed its mtime.
                    why = "steal"
                else:
                    why = self._claimable(st, time.time())
                if why is None:
                    lease.release()
                    continue
                record = {
                    "cell": cell_id,
                    "state": LEASED,
                    "worker": self.name,
                    "attempt": st.failures + 1,
                }
                if why == "steal":
                    record["stolen"] = True
                self.journal.append(record)
            st.state = LEASED
            st.attempt = st.failures + 1
            return Claim(lease=lease, state=st, reason=why), False
        return None, False

    # -- execution --------------------------------------------------------
    def _run_cell(self, st: CellState, lease: Lease) -> Dict[str, Any]:
        """Execute ``st``'s cell in a child; returns the settle record."""
        cell = self.cells[st.cell_id]
        recv, send = multiprocessing.Pipe(duplex=False)
        child = multiprocessing.Process(
            target=_cell_main,
            args=(cell.to_dict(), self.cfg.cache_dir, self.cfg.force, send),
            name=f"cell-{st.cell_id}",
        )
        t0 = time.monotonic()
        child.start()
        send.close()  # child's end lives in the child now
        timed_out = False
        while child.is_alive():
            if self._stop:
                child.kill()
                child.join()
                return {}  # interrupted: leave the cell leased
            elapsed = time.monotonic() - t0
            if (
                self.cfg.cell_timeout_s is not None
                and elapsed >= self.cfg.cell_timeout_s
            ):
                child.kill()
                child.join()
                timed_out = True
                break
            step = self.cfg.heartbeat_s
            if self.cfg.cell_timeout_s is not None:
                step = min(step, self.cfg.cell_timeout_s - elapsed)
            child.join(max(0.05, step))
            lease.beat()
        payload: Optional[Dict[str, Any]] = None
        if not timed_out:
            child.join()
            try:
                if recv.poll(0):
                    payload = recv.recv()
            except (EOFError, OSError):
                payload = None
        recv.close()
        if timed_out:
            return {
                "cell": st.cell_id,
                "state": FAILED,
                "attempt": st.attempt,
                "error": (
                    f"timeout: exceeded {self.cfg.cell_timeout_s:.9g}s "
                    "wall-clock budget"
                ),
            }
        if payload is not None and payload.get("ok"):
            return {
                "cell": st.cell_id,
                "state": DONE,
                "attempt": st.attempt,
                "key": payload["key"],
                "wall_s": payload["wall_s"],
                "from_cache": payload["from_cache"],
            }
        if payload is not None:
            error = payload.get("error", "unknown error")
        else:
            error = f"cell child died (exitcode {child.exitcode})"
        return {
            "cell": st.cell_id,
            "state": FAILED,
            "attempt": st.attempt,
            "error": error,
        }

    # -- the loop ---------------------------------------------------------
    def drain(self) -> WorkerStats:
        stats = WorkerStats()
        t_start = time.monotonic()
        while not self._stop:
            if (
                self.cfg.max_cells is not None
                and stats.ran >= self.cfg.max_cells
            ) or (
                self.cfg.max_seconds is not None
                and time.monotonic() - t_start >= self.cfg.max_seconds
            ):
                stats.outcome = SLICED
                return stats
            claim, all_done = self._claim()
            if claim is None:
                if all_done:
                    stats.outcome = DRAINED
                    return stats
                # Someone else is still working (or a backoff window is
                # open); wait a beat and re-examine the queue.
                time.sleep(self.cfg.poll_s)
                continue
            st = claim.state
            try:
                record = self._run_cell(st, claim.lease)
                if not record:  # interrupted mid-cell
                    break
                if record["state"] == FAILED:
                    failure_index = st.failures + 1
                    record["backoff_s"] = round(
                        retry_backoff_s(st.cell_id, failure_index, self.cfg),
                        6,
                    )
                self.journal.append(record)
            finally:
                claim.lease.release()
            stats.ran += 1
            stats.cells.append(st.cell_id)
            if claim.reason == "steal":
                stats.stolen += 1
            if record["state"] == DONE:
                stats.done += 1
                if record.get("from_cache"):
                    stats.cache_hits += 1
            else:
                stats.failed += 1
        if self._stop:
            stats.outcome = STOPPED
        return stats
