"""Profile artifacts: JSON profiles, folded flamegraph stacks, metrics.

One recorded experiment produces three sibling files:

``<exp>.profile.json``
    The full engine profile (schema-tagged): wall-time attribution per
    phase / event kind / callsite / scheduling edge, collapsed stacks,
    and a ``deterministic`` section that depends only on the simulation
    (counts and stack paths — byte-identical across runs).
``<exp>.folded``
    Collapsed stacks in the ``flamegraph.pl`` input format — one
    ``path;segments value`` line per stack, value in nanoseconds of self
    time. Feed straight to Brendan Gregg's ``flamegraph.pl`` (or any
    compatible renderer, e.g. speedscope's "collapsed" importer).
``<exp>.metrics.json``
    The sim-time metrics registry (queue-depth / ready-set histograms,
    link-utilization gauges, sampled series) — fully deterministic.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any, Dict, List, Optional

from repro.prof.profiler import EngineProfiler

__all__ = [
    "PROFILE_SCHEMA",
    "load_profile",
    "profile_dict",
    "write_artifacts",
    "write_folded",
    "write_profile",
]

PROFILE_SCHEMA = 1


def _ns_count(ns: Dict[str, int], counts: Dict[str, int]) -> dict:
    return {
        name: {"ns": ns[name], "count": counts.get(name, 0)}
        for name in sorted(ns)
    }


def profile_dict(
    prof: EngineProfiler, meta: Optional[Dict[str, Any]] = None
) -> dict:
    """The full profile as a JSON-safe dict (sorted keys throughout)."""
    return {
        "schema": PROFILE_SCHEMA,
        "meta": dict(sorted((meta or {}).items())),
        "engine": {
            "run_wall_ns": prof.run_wall_ns,
            "attributed_ns": prof.attributed_ns,
            "events": prof.events,
            "sims": prof.sims,
            "runs": prof.runs,
            "cancels": prof.cancels,
        },
        "phases": {
            name: {"self_ns": prof.phase_self_ns[name]}
            for name in sorted(prof.phase_self_ns)
        },
        "kinds": _ns_count(prof.kind_ns, prof.kind_counts),
        "sites": _ns_count(prof.site_ns, prof.site_counts),
        "edges": _ns_count(prof.edge_ns, prof.edge_counts),
        "stacks": {
            path: prof.stack_self_ns[path]
            for path in sorted(prof.stack_self_ns)
        },
        "deterministic": prof.deterministic_dict(),
    }


def write_profile(
    prof: EngineProfiler,
    path: str,
    meta: Optional[Dict[str, Any]] = None,
) -> None:
    """Write the profile JSON artifact."""
    doc = profile_dict(prof, meta)
    pathlib.Path(path).write_text(
        json.dumps(doc, sort_keys=True, indent=1) + "\n"
    )


def folded_lines(stacks: Dict[str, int]) -> List[str]:
    """``flamegraph.pl`` collapsed-stack lines, sorted for determinism."""
    return [f"{path} {value}" for path, value in sorted(stacks.items())]


def write_folded(prof: EngineProfiler, path: str) -> None:
    """Write the collapsed-stack flamegraph input file."""
    lines = folded_lines(prof.stack_self_ns)
    pathlib.Path(path).write_text("\n".join(lines) + ("\n" if lines else ""))


def write_artifacts(
    prof: EngineProfiler,
    out_dir: str,
    stem: str,
    meta: Optional[Dict[str, Any]] = None,
) -> List[str]:
    """Write all three artifacts for ``stem`` into ``out_dir``.

    Returns the written paths (profile, folded, metrics — in that order).
    The caller is expected to have called :meth:`EngineProfiler.finalize`.
    """
    out = pathlib.Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    profile_path = out / f"{stem}.profile.json"
    folded_path = out / f"{stem}.folded"
    metrics_path = out / f"{stem}.metrics.json"
    write_profile(prof, str(profile_path), meta)
    write_folded(prof, str(folded_path))
    metrics_path.write_text(prof.metrics.to_json())
    return [str(profile_path), str(folded_path), str(metrics_path)]


def load_profile(path: str) -> dict:
    """Load a ``.profile.json`` artifact, checking its schema tag."""
    doc = json.loads(pathlib.Path(path).read_text())
    schema = doc.get("schema")
    if schema != PROFILE_SCHEMA:
        raise ValueError(
            f"{path}: profile schema {schema!r}, expected {PROFILE_SCHEMA}"
        )
    return doc
