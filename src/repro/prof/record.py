"""Run a registered experiment under the engine profiler.

``record_experiment`` is the library form of ``repro perf record``: it
executes a driver (and its ``des_companion``, where one exists — several
figure drivers are analytic closed-form sweeps whose DES activity lives
in the companion) under a fresh :class:`~repro.prof.profiler.EngineProfiler`
and a fresh tracer, then writes the three profile artifacts.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass, field
from typing import Any, List, Optional

from repro.core import get_experiment
from repro.obs import Tracer, installed
from repro.prof.export import write_artifacts
from repro.prof.profiler import EngineProfiler, installed_profiler

__all__ = ["RecordOutcome", "record_experiment"]


@dataclass
class RecordOutcome:
    """What one profiled experiment run produced."""

    exp_id: str
    #: written artifact paths: profile.json, folded, metrics.json.
    paths: List[str] = field(default_factory=list)
    events: int = 0
    run_wall_ns: int = 0
    had_companion: bool = False
    result: Any = None


def record_experiment(
    exp_id: str,
    out_dir: str = "profiles",
    faults: Optional[str] = None,
) -> RecordOutcome:
    """Profile one registered experiment; write artifacts into ``out_dir``.

    The driver runs exactly as ``repro run --trace`` would — same
    companion behaviour, same installed-tracer plumbing — with the engine
    profiler installed process-wide so every simulator the driver builds
    is profiled.
    """
    from repro.experiments.common import faults_from

    driver = get_experiment(exp_id)
    prof = EngineProfiler()
    tracer = Tracer(meta={"exp_id": exp_id, "profiled": "1"})
    with faults_from(faults), installed(tracer), installed_profiler(prof):
        result = driver()
        module = importlib.import_module(driver.__module__)
        companion = getattr(module, "des_companion", None)
        if companion is not None:
            companion()
    prof.finalize(tracer)
    paths = write_artifacts(prof, out_dir, exp_id, meta={"exp_id": exp_id})
    return RecordOutcome(
        exp_id=exp_id,
        paths=paths,
        events=prof.events,
        run_wall_ns=prof.run_wall_ns,
        had_companion=companion is not None,
        result=result,
    )
