"""``repro-perf``: record, summarise and compare engine profiles.

Usage::

    repro-perf record --exp fig22 [--out profiles/] [--faults PLAN]
    repro-perf summary [PROFILE ...] [--top K]
    repro-perf flame PROFILE [-o OUT.folded]
    repro-perf diff A.profile.json B.profile.json [--top K] [--fail-over PCT]
    python -m repro perf record --exp fig22    # same, via the main CLI

``summary`` with no arguments summarises every ``*.profile.json`` under
``profiles/`` (where ``record`` writes by default), so the two-step
``repro perf record --exp fig22 && repro perf summary`` just works.
``diff --fail-over PCT`` exits nonzero when any engine phase slowed by
more than PCT percent — the CI regression gate.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
from typing import List, Optional

from repro.core.report import render_table
from repro.prof.analyze import (
    attribution_coverage,
    diff_phase_rows,
    edge_rows,
    phase_rows,
    site_rows,
)
from repro.prof.export import folded_lines, load_profile

__all__ = ["main", "render_diff", "render_summary"]

#: Phases below this self time are exempt from --fail-over: percentage
#: gates on sub-millisecond phases amplify scheduler jitter into noise.
FAIL_OVER_FLOOR_MS = 5.0


def render_summary(profile: dict, top: int = 10, label: str = "") -> str:
    """The full text summary of one profile."""
    eng = profile["engine"]
    coverage = attribution_coverage(profile)
    meta = ", ".join(f"{k}={v}" for k, v in sorted(profile["meta"].items()))
    out = [
        f"== engine profile{': ' + label if label else ''} ==\n"
        f"engine wall: {eng['run_wall_ns'] / 1e6:.3f} ms   "
        f"events: {eng['events']}   sims: {eng['sims']}   "
        f"attributed: {100.0 * coverage:.1f}%"
        + (f"   [{meta}]" if meta else "")
    ]
    rows = phase_rows(profile, top=top)
    if rows:
        out.append(render_table(rows, title="engine phases by self time"))
    rows = site_rows(profile, top=top)
    if rows:
        out.append(
            render_table(rows, title=f"top {top} callsites by inclusive time")
        )
    rows = edge_rows(profile, top=top)
    if rows:
        out.append(
            render_table(rows, title=f"top {top} scheduling edges")
        )
    return "\n".join(out)


def render_diff(a: dict, b: dict, top: int = 10) -> str:
    """Signed per-phase comparison of two profiles (A → B)."""
    ea, eb = a["engine"], b["engine"]
    out = [
        "== profile diff (A -> B) ==\n"
        f"A: {ea['run_wall_ns'] / 1e6:.3f} ms, {ea['events']} events    "
        f"B: {eb['run_wall_ns'] / 1e6:.3f} ms, {eb['events']} events"
    ]
    rows = diff_phase_rows(a, b, top=top)
    if rows:
        out.append(render_table(rows, title="engine phases by |delta|"))
    return "\n".join(out)


def _failing_phases(a: dict, b: dict, fail_over_pct: float) -> List[str]:
    """Phase names that slowed A→B beyond the threshold (and the floor)."""
    failing = []
    for row in diff_phase_rows(a, b):
        if row["a_ms"] < FAIL_OVER_FLOOR_MS and row["b_ms"] < FAIL_OVER_FLOOR_MS:
            continue
        if row["delta_%"] == "-" or row["delta_%"] <= fail_over_pct:
            continue
        failing.append(f"{row['phase']} (+{row['delta_%']}%)")
    return failing


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-perf",
        description="Record and analyse engine (wall-clock) profiles of "
        "the repro discrete-event simulator.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    p_rec = sub.add_parser("record", help="profile a registered experiment")
    p_rec.add_argument("--exp", required=True, metavar="ID",
                       help="experiment id, e.g. fig22")
    p_rec.add_argument("--out", default="profiles", metavar="DIR",
                       help="artifact directory (default profiles/)")
    p_rec.add_argument("--faults", default=None, metavar="PLAN",
                       help="inject faults from a JSON fault plan")
    p_sum = sub.add_parser("summary", help="summarise recorded profiles")
    p_sum.add_argument("profiles", nargs="*", metavar="PROFILE",
                       help="profile files (default: profiles/*.profile.json)")
    p_sum.add_argument("--top", type=int, default=10,
                       help="rows per ranking table (default 10)")
    p_flame = sub.add_parser(
        "flame", help="emit flamegraph.pl collapsed stacks from a profile"
    )
    p_flame.add_argument("profile")
    p_flame.add_argument("-o", "--out", default=None, metavar="OUT",
                         help="output file (default: stdout)")
    p_diff = sub.add_parser("diff", help="compare two profiles (A -> B)")
    p_diff.add_argument("profile_a")
    p_diff.add_argument("profile_b")
    p_diff.add_argument("--top", type=int, default=10,
                        help="rows per ranking table (default 10)")
    p_diff.add_argument(
        "--fail-over", type=float, default=None, metavar="PCT",
        help="exit 1 if any phase slowed by more than PCT percent "
        f"(phases under {FAIL_OVER_FLOOR_MS:g} ms are exempt)",
    )
    return parser


def _cmd_record(args: argparse.Namespace) -> int:
    from repro.core.registry import UnknownExperimentError
    from repro.prof.record import record_experiment

    try:
        outcome = record_experiment(args.exp, args.out, faults=args.faults)
    except UnknownExperimentError as exc:
        print(f"repro-perf: {exc}", file=sys.stderr)
        return 2
    note = "" if outcome.had_companion else " (analytic driver, no companion)"
    print(
        f"profiled {args.exp}: {outcome.events} events, "
        f"{outcome.run_wall_ns / 1e6:.3f} ms engine{note}"
    )
    for path in outcome.paths:
        print(f"wrote {path}")
    return 0


def _cmd_summary(args: argparse.Namespace) -> int:
    paths = list(args.profiles)
    if not paths:
        paths = sorted(
            str(p) for p in pathlib.Path("profiles").glob("*.profile.json")
        )
        if not paths:
            print(
                "repro-perf: no profiles given and none found under "
                "profiles/ — run `repro-perf record --exp ID` first",
                file=sys.stderr,
            )
            return 2
    for i, path in enumerate(paths):
        if i:
            print()
        print(render_summary(load_profile(path), top=args.top, label=path))
    return 0


def _cmd_flame(args: argparse.Namespace) -> int:
    profile = load_profile(args.profile)
    lines = folded_lines(profile["stacks"])
    text = "\n".join(lines) + ("\n" if lines else "")
    if args.out:
        pathlib.Path(args.out).write_text(text)
        print(f"wrote {args.out} ({len(lines)} stacks)", file=sys.stderr)
    else:
        sys.stdout.write(text)
    return 0


def _cmd_diff(args: argparse.Namespace) -> int:
    a = load_profile(args.profile_a)
    b = load_profile(args.profile_b)
    print(render_diff(a, b, top=args.top))
    if args.fail_over is not None:
        failing = _failing_phases(a, b, args.fail_over)
        if failing:
            print(
                f"FAIL: {len(failing)} phase(s) slowed beyond "
                f"{args.fail_over:g}%: " + ", ".join(failing)
            )
            return 1
        print(f"ok: no phase slowed beyond {args.fail_over:g}%")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    try:
        if args.command == "record":
            return _cmd_record(args)
        if args.command == "summary":
            return _cmd_summary(args)
        if args.command == "flame":
            return _cmd_flame(args)
        return _cmd_diff(args)
    except (OSError, ValueError) as exc:
        print(f"repro-perf: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
