"""Self-profiling for the simulator: engine-time attribution + metrics.

Where :mod:`repro.obs` answers "where does *simulated* time go?", this
package answers "where does the *host's wall-clock* time go while the
engine runs?" — the instrument the ROADMAP hot-path rewrite is judged
against. Two coordinated halves:

* :class:`EngineProfiler` — low-overhead wall-clock attribution per
  event kind, per callsite (scheduling parent from the simrace
  bookkeeping) and per engine subsystem (queue ops, wait/wake, resource
  arbitration, store traffic), attached via ``Simulator(profile=...)``
  or process-wide with :func:`install_profiler` / :func:`installed_profiler`.
  Off by default: unprofiled runs keep the original run loop and pay
  only ``is None`` checks.
* a sim-time :class:`~repro.prof.metrics.MetricsRegistry` — fixed-bucket
  histograms (event-queue depth, ready-set size), gauges (link
  utilization) and sampled series riding the obs counter plumbing; its
  artifacts are byte-deterministic.

Artifacts (``repro perf record`` / ``repro all --profile DIR``): a JSON
profile, a ``flamegraph.pl``-compatible collapsed-stack file and a
metrics JSON per experiment. ``repro perf summary|flame|diff`` analyse
them; ``benchmarks/compare.py`` ingests per-phase timings for the
schema-2 regression baseline. See docs/OBSERVABILITY.md ("Profiling the
engine").
"""

from repro.prof.export import (
    PROFILE_SCHEMA,
    load_profile,
    profile_dict,
    write_artifacts,
    write_folded,
    write_profile,
)
from repro.prof.metrics import POW2_BUCKETS, Gauge, Histogram, MetricsRegistry
from repro.prof.profiler import (
    EngineProfiler,
    current_profiler,
    install_profiler,
    installed_profiler,
    uninstall_profiler,
)
from repro.prof.record import RecordOutcome, record_experiment

__all__ = [
    "EngineProfiler",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "POW2_BUCKETS",
    "PROFILE_SCHEMA",
    "RecordOutcome",
    "current_profiler",
    "install_profiler",
    "installed_profiler",
    "load_profile",
    "profile_dict",
    "record_experiment",
    "uninstall_profiler",
    "write_artifacts",
    "write_folded",
    "write_profile",
]
