"""``python -m repro.prof`` — alias for the ``repro-perf`` CLI."""

import sys

from repro.prof.cli import main

if __name__ == "__main__":
    sys.exit(main())
