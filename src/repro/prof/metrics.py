"""Sim-time metrics registry: histograms, gauges, sampled time series.

Every value recorded here is a function of the *simulation* alone
(simulated timestamps, queue depths, event counts), never of the host
clock — so a metrics artifact is byte-identical across repeated runs,
across ``--jobs N`` fan-outs, and across machines. Wall-clock cost lives
in :mod:`repro.prof.profiler`; the two are exported side by side but
never mixed in one file.

Three instrument kinds:

* :class:`Histogram` — counts over **fixed, deterministic** bucket edges
  declared at creation time (no adaptive resizing: two runs always bin
  identically). Used for event-queue depth and ready-set size.
* :class:`Gauge` — a single last-write-wins value (e.g. a link's final
  utilization fraction).
* sampled **time series** — ``(sim_time, value)`` samples riding the
  existing :class:`repro.obs.tracer.Counter` plumbing, so the series
  semantics (sampled vs accumulating, tie-stable ordering) match traces
  exactly.
"""

from __future__ import annotations

import json
from bisect import bisect_left
from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs.tracer import Counter

__all__ = ["Gauge", "Histogram", "MetricsRegistry", "POW2_BUCKETS"]

#: Default bucket edges for occupancy-style histograms (queue depth,
#: ready-set size): powers of two up to ~1M. Fixed forever — bucket
#: layout is part of the metrics-file contract.
POW2_BUCKETS: Tuple[float, ...] = tuple(float(2 ** i) for i in range(21))

METRICS_SCHEMA = 1


class Histogram:
    """Counts over fixed bucket edges.

    A value ``v`` lands in the bucket of the first edge ``>= v``; values
    above the last edge land in the overflow bucket. ``sum`` and ``n``
    let consumers recover the mean without a separate counter.
    """

    __slots__ = ("name", "edges", "counts", "n", "sum")

    def __init__(self, name: str, edges: Sequence[float]) -> None:
        if not edges or list(edges) != sorted(edges):
            raise ValueError(f"histogram {name!r} needs sorted, non-empty edges")
        self.name = name
        self.edges: Tuple[float, ...] = tuple(float(e) for e in edges)
        self.counts: List[int] = [0] * (len(self.edges) + 1)
        self.n = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        """Count one observation of ``value``.

        Bucket ``i`` collects values in ``(edges[i-1], edges[i]]``; the
        final bucket is the overflow above the last edge.
        """
        idx = bisect_left(self.edges, float(value))
        self.counts[idx] += 1
        self.n += 1
        self.sum += float(value)

    def to_dict(self) -> dict:
        return {
            "edges": list(self.edges),
            "counts": list(self.counts),
            "n": self.n,
            "sum": self.sum,
        }


class Gauge:
    """A last-write-wins scalar."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def to_dict(self) -> dict:
        return {"value": self.value}


class MetricsRegistry:
    """Create-on-first-use registry of histograms, gauges and series."""

    def __init__(self) -> None:
        self.histograms: Dict[str, Histogram] = {}
        self.gauges: Dict[str, Gauge] = {}
        #: name → sampled time series (an obs :class:`Counter`).
        self.series: Dict[str, Counter] = {}

    def histogram(
        self, name: str, edges: Sequence[float] = POW2_BUCKETS
    ) -> Histogram:
        h = self.histograms.get(name)
        if h is None:
            h = self.histograms[name] = Histogram(name, edges)
        elif h.edges != tuple(float(e) for e in edges):
            raise ValueError(f"histogram {name!r} re-declared with new edges")
        return h

    def gauge(self, name: str) -> Gauge:
        g = self.gauges.get(name)
        if g is None:
            g = self.gauges[name] = Gauge(name)
        return g

    def time_series(self, name: str) -> Counter:
        """A ``(sim_time, value)`` series on the obs counter plumbing."""
        c = self.series.get(name)
        if c is None:
            c = self.series[name] = Counter(name)
        return c

    # -- export -----------------------------------------------------------
    def to_dict(self) -> dict:
        """Deterministic dict form (sorted names, schema-tagged)."""
        return {
            "schema": METRICS_SCHEMA,
            "histograms": {
                name: self.histograms[name].to_dict()
                for name in sorted(self.histograms)
            },
            "gauges": {
                name: self.gauges[name].to_dict()
                for name in sorted(self.gauges)
            },
            "series": {
                name: {
                    "mode": self.series[name].mode,
                    "t": [t for t, _v in self.series[name].series()],
                    "v": [v for _t, v in self.series[name].series()],
                }
                for name in sorted(self.series)
            },
        }

    def to_json(self) -> str:
        """Byte-deterministic JSON (identical runs serialize identically)."""
        return json.dumps(self.to_dict(), sort_keys=True, indent=1) + "\n"

    def fill_link_utilization(self, tracer: Optional[object]) -> int:
        """Derive per-link utilization gauges from an obs tracer's
        ``net.link[...].busy_s`` counters; returns how many were set.

        This is how network metrics ride the existing trace plumbing: the
        tracer already accounts busy seconds per directed link, so the
        registry only divides by the trace's end time.
        """
        if tracer is None:
            return 0
        end = tracer.end_time
        if end <= 0:
            return 0
        n = 0
        for name in sorted(tracer.counters):
            if name.startswith("net.link[") and name.endswith("].busy_s"):
                label = name[len("net.link["):-len("].busy_s")]
                busy = tracer.counters[name].total
                self.gauge(f"net.link[{label}].utilization").set(busy / end)
                n += 1
        return n
