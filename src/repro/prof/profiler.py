"""Low-overhead wall-clock attribution of simulator execution.

# simlint: ignore-file[SL201] — this module *is* the wall-clock
# instrument: every ``perf_counter_ns`` read here measures the host cost
# of the engine, never simulated time.

The :class:`EngineProfiler` answers "where does the *host's* wall time
go while the discrete-event engine runs?" — the question the ROADMAP-1
hot-path rewrite must be able to answer before touching anything. It is
the simulator-of-the-simulator instrument in the sense of Cornebize &
Legrand's calibration loop: you cannot make a simulator faithful *and*
fast without profiling the simulator itself.

Attribution model (contiguous-mark self-time accounting):

* The profiled run loop (``Simulator._run_profiled``) calls
  :meth:`begin_event` / :meth:`end_event` around every dispatched queue
  entry. The gap between two events — heap pop, peek, loop bookkeeping —
  is attributed to the ``engine.queue`` phase, so **every nanosecond
  between the first and last mark of a run is attributed somewhere**
  (the ≥95%-named-subsystems property is structural, not statistical).
* Instrumented engine internals (resource arbitration, store put/get,
  event wake fan-out, queue pushes) bracket themselves with
  :meth:`push_phase` / :meth:`pop_phase`; self time splits exactly at
  the probe boundaries, like a sampling profiler with perfect samples.
* Each queue entry carries an optional ``(kind, owner)`` **label** set
  by its creation site (process step, delay wakeup, scheduled callback)
  — only when a profiler is attached, so unprofiled runs never build
  labels. The scheduling-parent bookkeeping added for the simrace work
  (``entry.parent``) links every event to the event that scheduled it,
  which yields collapsed **ancestry stacks** (flamegraph.pl-compatible)
  and a parent→child edge table.

Cost discipline: with no profiler attached (the default), the engine
pays exactly one ``is None`` check per instrumentation site — the same
contract as the obs tracer. With a profiler attached, each event costs
two ``perf_counter_ns`` reads plus a handful of dict operations.

Process-global installation mirrors the tracer: :func:`install_profiler`
/ :func:`installed_profiler` make a profiler reach simulators
constructed deep inside experiment drivers (the ``repro perf record``
path).
"""

from __future__ import annotations

import re
from contextlib import contextmanager
from time import perf_counter_ns
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.prof.metrics import POW2_BUCKETS, MetricsRegistry

__all__ = [
    "EngineProfiler",
    "current_profiler",
    "install_profiler",
    "installed_profiler",
    "uninstall_profiler",
]

#: Collapse owner names into stable groups: ``rank17`` → ``rank*``,
#: ``xfer 3->5`` → ``xfer *->*`` — attribution wants the *site*, not the
#: instance, and bounded-cardinality keys keep profiles small.
_DIGITS = re.compile(r"\d+")

#: Ancestry stacks deeper than this reuse the parent's path (the chain
#: is already self-recursive by then; flamegraphs stay readable).
_MAX_STACK_SEGMENTS = 24


def _normalize(owner: str) -> str:
    return _DIGITS.sub("*", owner)


class EngineProfiler:
    """Collects engine wall-time attribution and sim-time metrics.

    All ``*_ns`` aggregates are host-clock nanoseconds and therefore
    vary run to run; everything under :attr:`metrics` and
    :meth:`deterministic_dict` is a function of the simulation alone and
    is byte-stable (tested in ``tests/prof/test_determinism.py``).
    """

    def __init__(self, queue_sample_every: int = 64) -> None:
        #: phase → self nanoseconds (``engine.queue``, ``proc.delay``,
        #: ``resource.request``, ...). Sums to the engine wall time.
        self.phase_self_ns: Dict[str, int] = {}
        #: collapsed stack path → self nanoseconds (flamegraph input).
        self.stack_self_ns: Dict[str, int] = {}
        #: event kind → (inclusive ns, count).
        self.kind_ns: Dict[str, int] = {}
        self.kind_counts: Dict[str, int] = {}
        #: ``kind:owner`` site → (inclusive ns, count).
        self.site_ns: Dict[str, int] = {}
        self.site_counts: Dict[str, int] = {}
        #: ``parent_site -> child_site`` scheduling edge → (ns, count).
        self.edge_ns: Dict[str, int] = {}
        self.edge_counts: Dict[str, int] = {}
        #: total wall ns spent inside ``Simulator.run`` loops.
        self.run_wall_ns = 0
        self.events = 0
        self.sims = 0
        self.runs = 0
        self.cancels = 0
        self.metrics = MetricsRegistry()
        self.queue_sample_every = int(queue_sample_every)

        self._h_depth = self.metrics.histogram(
            "engine.queue.depth", POW2_BUCKETS
        )
        self._h_ready = self.metrics.histogram(
            "engine.ready_set.size", POW2_BUCKETS
        )
        self._depth_series = self.metrics.time_series("engine.queue.depth")
        # -- live state ----------------------------------------------------
        self._mark = 0  # last attributed host timestamp
        self._frames: List[List[Any]] = []  # [phase, path]
        self._event_meta: List[Tuple[str, str, int]] = []  # (kind, site, t0)
        self._outside_probes = 0
        self._run_t0: Optional[int] = None
        self._path_of_seq: Dict[int, str] = {}
        self._site_of_seq: Dict[int, str] = {}
        self._norm_cache: Dict[str, str] = {}
        self._batch_time: Optional[float] = None
        self._batch_size = 0
        self._pop_count = 0

    # -- attribution core --------------------------------------------------
    def _advance(self, now: int, phase: str, path: str) -> None:
        d = now - self._mark
        if d > 0:
            acc = self.phase_self_ns
            acc[phase] = acc.get(phase, 0) + d
            acc = self.stack_self_ns
            acc[path] = acc.get(path, 0) + d
        self._mark = now

    # -- run-loop hooks ----------------------------------------------------
    def begin_run(self) -> None:
        """Called by the profiled run loop on entry."""
        now = perf_counter_ns()
        self._run_t0 = now
        self._mark = now
        self.runs += 1

    def end_run(self) -> None:
        """Called by the profiled run loop on exit (always; ``finally``)."""
        now = perf_counter_ns()
        if self._frames:  # an event raised out of the loop: unwind frames
            while self._frames:
                phase, path = self._frames.pop()
                self._advance(now, phase, path)
            self._event_meta.clear()
        else:
            self._advance(now, "engine.queue", "engine.queue")
        if self._run_t0 is not None:
            self.run_wall_ns += now - self._run_t0
            self._run_t0 = None

    def begin_event(self, entry: Any, queue_depth: int) -> None:
        """Attribute the inter-event gap to ``engine.queue`` and open the
        dispatched entry's frame (labelled by its creation site, stacked
        by its scheduling parent)."""
        now = perf_counter_ns()
        self._advance(now, "engine.queue", "engine.queue")
        label = entry.label
        if label is None:
            kind, owner = "engine.callback", "<anonymous>"
        else:
            kind, owner = label
        norm = self._norm_cache.get(owner)
        if norm is None:
            norm = self._norm_cache[owner] = _normalize(owner)
        site = f"{kind}:{norm}" if norm else kind
        parent_path = self._path_of_seq.get(entry.parent)
        if parent_path is None:
            path = site
        elif parent_path == site or parent_path.endswith(";" + site):
            path = parent_path  # self-recursion: collapse
        elif parent_path.count(";") + 2 > _MAX_STACK_SEGMENTS:
            path = parent_path  # depth cap: stop extending
        else:
            path = parent_path + ";" + site
        self._path_of_seq[entry.seq] = path
        parent_site = self._site_of_seq.get(entry.parent, "<external>")
        self._site_of_seq[entry.seq] = site
        edge = f"{parent_site} -> {site}"
        self.edge_counts[edge] = self.edge_counts.get(edge, 0) + 1
        self._pending_edge = edge
        self._frames.append([kind, path])
        self._event_meta.append((kind, site, now))
        self.events += 1
        # -- sim-time metrics (deterministic) ------------------------------
        t = entry.time
        if t != self._batch_time:
            if self._batch_time is not None:
                self._h_ready.observe(self._batch_size)
            self._batch_time = t
            self._batch_size = 1
        else:
            self._batch_size += 1
        self._pop_count += 1
        if self._pop_count % self.queue_sample_every == 0:
            self._depth_series.record(t, float(queue_depth))

    def end_event(self) -> None:
        """Close the current event frame and charge its inclusive time."""
        now = perf_counter_ns()
        phase, path = self._frames.pop()
        self._advance(now, phase, path)
        kind, site, t0 = self._event_meta.pop()
        incl = now - t0
        self.kind_ns[kind] = self.kind_ns.get(kind, 0) + incl
        self.kind_counts[kind] = self.kind_counts.get(kind, 0) + 1
        self.site_ns[site] = self.site_ns.get(site, 0) + incl
        self.site_counts[site] = self.site_counts.get(site, 0) + 1
        edge = self._pending_edge
        if edge is not None:
            self.edge_ns[edge] = self.edge_ns.get(edge, 0) + incl
            self._pending_edge = None

    _pending_edge: Optional[str] = None

    # -- inner-subsystem probes -------------------------------------------
    def push_phase(self, phase: str) -> None:
        """Open a nested engine-subsystem frame (resource arbitration,
        store ops, event wake fan-out, queue push). No-op outside an
        event frame — setup work before ``run()`` is not engine time."""
        if not self._frames:
            self._outside_probes += 1
            return
        now = perf_counter_ns()
        top = self._frames[-1]
        self._advance(now, top[0], top[1])
        self._frames.append([phase, top[1] + ";" + phase])

    def pop_phase(self) -> None:
        if self._outside_probes:
            self._outside_probes -= 1
            return
        now = perf_counter_ns()
        phase, path = self._frames.pop()
        self._advance(now, phase, path)

    # -- queue hooks -------------------------------------------------------
    def note_push(self, queue_len: int) -> None:
        """Called by ``EventQueue.push``: depth histogram (deterministic)."""
        self._h_depth.observe(queue_len)

    def note_cancel(self) -> None:
        """Called by ``EventQueue.cancel``: counts lazy cancellations."""
        self.cancels += 1

    def attach_sim(self) -> None:
        self.sims += 1

    # -- finalize ----------------------------------------------------------
    def finalize(self, tracer: Optional[object] = None) -> None:
        """Flush batch metrics and derive tracer-based metrics.

        Safe to call more than once; ``tracer`` (when given) contributes
        per-link utilization gauges from its ``net.link[*].busy_s``
        counters.
        """
        if self._batch_time is not None:
            self._h_ready.observe(self._batch_size)
            self._batch_time = None
            self._batch_size = 0
        self.metrics.fill_link_utilization(tracer)

    # -- views -------------------------------------------------------------
    @property
    def attributed_ns(self) -> int:
        """Nanoseconds attributed to named phases (= sum of self times)."""
        return sum(self.phase_self_ns.values())

    def deterministic_dict(self) -> dict:
        """The schedule-determined projection of this profile.

        Everything here — kind/site/edge counts, stack paths, event and
        simulator totals — depends only on the simulation, never on the
        host clock, so it is byte-identical across repeated runs of a
        deterministic driver.
        """
        return {
            "events": self.events,
            "sims": self.sims,
            "runs": self.runs,
            "cancels": self.cancels,
            "kind_counts": dict(sorted(self.kind_counts.items())),
            "site_counts": dict(sorted(self.site_counts.items())),
            "edge_counts": dict(sorted(self.edge_counts.items())),
            "stack_paths": sorted(self.stack_self_ns),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<EngineProfiler {self.events} events, "
            f"{self.run_wall_ns / 1e6:.2f} ms engine>"
        )


#: Process-wide installed profiler (``None`` = profiling off). Simulators
#: constructed without an explicit ``profile=`` fall back to this — how
#: ``repro perf record`` and ``repro all --profile`` reach simulations
#: created deep inside experiment drivers.
_CURRENT: Optional[EngineProfiler] = None


def current_profiler() -> Optional[EngineProfiler]:
    """The installed profiler, or ``None`` when profiling is off."""
    return _CURRENT


def install_profiler(profiler: EngineProfiler) -> EngineProfiler:
    """Install ``profiler`` as the fallback for new simulators."""
    global _CURRENT
    _CURRENT = profiler
    return profiler


def uninstall_profiler() -> None:
    """Remove the installed profiler (new simulators stop profiling)."""
    global _CURRENT
    _CURRENT = None


@contextmanager
def installed_profiler(
    profiler: Optional[EngineProfiler] = None,
) -> Iterator[EngineProfiler]:
    """Install a profiler for a ``with`` block (fresh one if not given);
    always restores the previously-installed profiler on exit."""
    global _CURRENT
    previous = _CURRENT
    _CURRENT = profiler if profiler is not None else EngineProfiler()
    try:
        yield _CURRENT
    finally:
        _CURRENT = previous
