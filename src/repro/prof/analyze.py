"""Profile analysis: hotspot tables, attribution coverage, per-phase diffs.

Consumes loaded ``.profile.json`` dicts (see :mod:`repro.prof.export`)
and returns plain row dicts for :func:`repro.core.report.render_table` —
the same rendering path ``repro-trace`` and the experiment reports use.
"""

from __future__ import annotations

from typing import List, Optional

__all__ = [
    "attribution_coverage",
    "diff_phase_rows",
    "edge_rows",
    "kind_rows",
    "phase_rows",
    "site_rows",
]


def attribution_coverage(profile: dict) -> float:
    """Fraction of measured run wall time attributed to named phases.

    By construction of the mark-chain accounting this is ~1.0 (the only
    unattributed time is the final ``end_run`` bookkeeping) — the
    acceptance bar is ≥0.95.
    """
    wall = profile["engine"]["run_wall_ns"]
    if wall <= 0:
        return 1.0
    return min(1.0, profile["engine"]["attributed_ns"] / wall)


def phase_rows(profile: dict, top: Optional[int] = None) -> List[dict]:
    """Engine phases by self time, with percent-of-run attribution."""
    wall = profile["engine"]["run_wall_ns"] or 1
    rows = [
        {
            "phase": name,
            "self_ms": round(entry["self_ns"] / 1e6, 4),
            "pct": round(100.0 * entry["self_ns"] / wall, 2),
        }
        for name, entry in profile["phases"].items()
    ]
    rows.sort(key=lambda r: (-r["self_ms"], r["phase"]))
    if top is not None:
        rows = rows[:top]
    return rows


def _ns_count_rows(
    table: dict, key: str, wall: int, top: Optional[int]
) -> List[dict]:
    rows = []
    for name, entry in table.items():
        count = entry["count"] or 1
        rows.append(
            {
                key: name,
                "count": entry["count"],
                "total_ms": round(entry["ns"] / 1e6, 4),
                "avg_us": round(entry["ns"] / count / 1e3, 3),
                "pct": round(100.0 * entry["ns"] / wall, 2),
            }
        )
    rows.sort(key=lambda r: (-r["total_ms"], r[key]))
    if top is not None:
        rows = rows[:top]
    return rows


def kind_rows(profile: dict, top: Optional[int] = None) -> List[dict]:
    """Event kinds (proc.delay, engine.callback, ...) by inclusive time."""
    wall = profile["engine"]["run_wall_ns"] or 1
    return _ns_count_rows(profile["kinds"], "kind", wall, top)


def site_rows(profile: dict, top: Optional[int] = None) -> List[dict]:
    """Callsites (``kind:owner``, owners digit-normalized) by inclusive
    time — the per-process/per-callsite hotspot table."""
    wall = profile["engine"]["run_wall_ns"] or 1
    return _ns_count_rows(profile["sites"], "site", wall, top)


def edge_rows(profile: dict, top: Optional[int] = None) -> List[dict]:
    """Scheduling edges (``parent -> child`` sites) by downstream time.

    The parent comes from the simrace scheduled-by bookkeeping: this
    table answers "which site *causes* the expensive events?".
    """
    wall = profile["engine"]["run_wall_ns"] or 1
    return _ns_count_rows(profile["edges"], "edge", wall, top)


def diff_phase_rows(
    a: dict, b: dict, top: Optional[int] = None
) -> List[dict]:
    """Signed per-phase deltas between two profiles (A → B).

    ``delta_pct`` is relative to A's phase time (blank for phases new in
    B). Sorted by |delta|, so the first row names the phase that moved
    the most — the ``repro perf diff`` regression-triage view.
    """
    pa = {k: v["self_ns"] for k, v in a["phases"].items()}
    pb = {k: v["self_ns"] for k, v in b["phases"].items()}
    rows = []
    for name in sorted(set(pa) | set(pb)):
        na, nb = pa.get(name, 0), pb.get(name, 0)
        rows.append(
            {
                "phase": name,
                "a_ms": round(na / 1e6, 4),
                "b_ms": round(nb / 1e6, 4),
                "delta_ms": round((nb - na) / 1e6, 4),
                "delta_%": round(100.0 * (nb - na) / na, 2) if na else "-",
            }
        )
    rows.sort(key=lambda r: (-abs(r["delta_ms"]), r["phase"]))
    if top is not None:
        rows = rows[:top]
    return rows
