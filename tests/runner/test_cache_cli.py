"""``repro cache verify|gc``: classification, deletion, eviction."""
# Fabricated ages/sizes below are test fixtures, not model constants.
# simlint: ignore-file[SL302,SL303]

import os
import shutil
import time

from repro.core.experiment import ExperimentResult
from repro.obs import Tracer, installed
from repro.runner import CacheEntry, ResultCache
from repro.runner.cache_cli import evict_older_than, main, scan

KEY_A = "aa" + "0" * 62
KEY_B = "bb" + "0" * 62


def _entry(key):
    r = ExperimentResult(
        exp_id="figX", title="t", xlabel="x", ylabel="y", notes=""
    )
    r.add("XT4", [1, 2], [1.0, 2.0])
    return CacheEntry(
        key=key, exp_id="figX", version="1.0.0", wall_s=0.1, result=r
    )


def _seeded_cache(tmp_path):
    cache = ResultCache(tmp_path / "c")
    cache.put(_entry(KEY_A))
    cache.put(_entry(KEY_B))
    return cache


def test_clean_store_scans_clean(tmp_path):
    report = scan(_seeded_cache(tmp_path))
    assert report.scanned == 2 and report.ok == 2
    assert report.problems == []


def test_scan_classifies_corrupt_misplaced_and_tmp(tmp_path):
    cache = _seeded_cache(tmp_path)
    good = cache.path_for(KEY_A)
    corrupt = good.parent / ("cc" + "0" * 62 + ".json")
    corrupt.write_bytes(b"{torn")
    misplaced = good.parent / ("dd" + "0" * 62 + ".json")
    shutil.copy(good, misplaced)  # valid entry, wrong address
    abandoned = good.parent / ".tmp-dead.json"
    abandoned.write_text("{}")
    report = scan(cache)
    assert report.ok == 2
    assert [p.name for p in report.corrupt] == [corrupt.name]
    assert [p.name for p in report.misplaced] == [misplaced.name]
    assert [p.name for p in report.tmp] == [abandoned.name]
    # Nothing deleted without the flag...
    assert corrupt.is_file() and misplaced.is_file() and abandoned.is_file()
    # ...and a delete pass removes exactly the debris.
    report = scan(cache, delete=True)
    assert report.deleted == 3
    assert not corrupt.exists() and not misplaced.exists()
    assert not abandoned.exists()
    assert cache.get(KEY_A) is not None and cache.get(KEY_B) is not None


def test_scan_publishes_counters(tmp_path):
    cache = _seeded_cache(tmp_path)
    cache.path_for(KEY_A).write_bytes(b"garbage")
    tracer = Tracer()
    with installed(tracer):
        scan(cache)
    totals = tracer.counter_totals("cache.verify.")
    assert totals["cache.verify.scanned"] == 2.0
    assert totals["cache.verify.corrupt"] == 1.0


def test_gc_evicts_only_old_entries(tmp_path):
    cache = _seeded_cache(tmp_path)
    old = cache.path_for(KEY_A)
    week = 7 * 86400
    os.utime(old, (time.time() - week, time.time() - week))  # simlint: ignore[SL201]
    report = evict_older_than(cache, max_age_days=1.0)
    assert report.scanned == 2 and report.evicted == 1
    assert report.reclaimed_bytes > 0
    assert cache.get(KEY_A) is None  # safe: recomputed on next miss
    assert cache.get(KEY_B) is not None


def test_gc_dry_run_deletes_nothing(tmp_path):
    cache = _seeded_cache(tmp_path)
    report = evict_older_than(cache, max_age_days=0.0, dry_run=True)
    assert report.evicted == 2 and report.dry_run
    assert cache.get(KEY_A) is not None and cache.get(KEY_B) is not None


def test_gc_spares_fresh_tmp_files(tmp_path):
    """A just-born temp file may be an in-flight atomic write: gc must
    not race it. An hour-old one is debris and goes."""
    cache = _seeded_cache(tmp_path)
    parent = cache.path_for(KEY_A).parent
    fresh = parent / ".tmp-inflight.json"
    fresh.write_text("{}")
    stale = parent / ".tmp-dead.json"
    stale.write_text("{}")
    hour = time.time() - 3600  # simlint: ignore[SL201]
    os.utime(stale, (hour, hour))
    evict_older_than(cache, max_age_days=365.0)
    assert fresh.exists()
    assert not stale.exists()


def test_cli_verify_exit_codes(tmp_path, capsys):
    cache = _seeded_cache(tmp_path)
    assert main(["verify", "--cache-dir", str(cache.root)]) == 0
    cache.path_for(KEY_A).write_bytes(b"garbage")
    assert main(["verify", "--cache-dir", str(cache.root)]) == 1
    assert "corrupt" in capsys.readouterr().out
    assert main(["verify", "--delete", "--cache-dir", str(cache.root)]) == 0
    assert main(["verify", "--cache-dir", str(cache.root)]) == 0


def test_cli_gc_reports(tmp_path, capsys):
    cache = _seeded_cache(tmp_path)
    code = main(
        ["gc", "--max-age-days", "0", "--dry-run",
         "--cache-dir", str(cache.root)]
    )
    assert code == 0
    assert "would evict 2" in capsys.readouterr().out
    assert cache.get(KEY_A) is not None


def test_missing_store_is_empty_not_an_error(tmp_path):
    cache = ResultCache(tmp_path / "nope")
    assert scan(cache).scanned == 0
    assert evict_older_than(cache, max_age_days=1.0).scanned == 0
