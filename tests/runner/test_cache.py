"""The content-addressed result store: round-trips, misses, corruption."""
# Fabricated wall_s literals are test fixtures, not model constants.
# simlint: ignore-file[SL302,SL303]

import json

from repro.core.experiment import ExperimentResult
from repro.core.report import render_csv, render_result
from repro.runner import CacheEntry, ResultCache

KEY = "ab" + "0" * 62


def _result() -> ExperimentResult:
    r = ExperimentResult(
        exp_id="figX",
        title="A figure",
        xlabel="n",
        ylabel="GB/s",
        notes="calibrated",
    )
    r.add("XT4", [1, 2, 4], [1.5, 2.25, 3.0])
    r.rows = [{"system": "XT4", "peak": 10.4}, {"system": "XT3", "peak": 4.8}]
    return r


def _entry(key=KEY) -> CacheEntry:
    return CacheEntry(
        key=key, exp_id="figX", version="1.0.0", wall_s=0.25, result=_result()
    )


def test_miss_on_empty_cache(tmp_path):
    cache = ResultCache(tmp_path / "c")
    assert cache.get(KEY) is None
    assert KEY not in cache
    assert cache.entries() == 0


def test_put_get_round_trip(tmp_path):
    cache = ResultCache(tmp_path / "c")
    path = cache.put(_entry())
    assert path.is_file() and path.name == f"{KEY}.json"
    got = cache.get(KEY)
    assert got is not None
    assert got.exp_id == "figX" and got.wall_s == 0.25
    assert got.result.to_dict() == _result().to_dict()
    assert cache.entries() == 1


def test_round_trip_renders_byte_identical(tmp_path):
    cache = ResultCache(tmp_path / "c")
    cache.put(_entry())
    got = cache.get(KEY).result
    assert render_csv(got) == render_csv(_result())
    assert render_result(got) == render_result(_result())


def test_row_column_order_survives(tmp_path):
    # Column order of table rows is semantic (it is the CSV header
    # order); a sorted-keys serialization would scramble it.
    cache = ResultCache(tmp_path / "c")
    cache.put(_entry())
    rows = cache.get(KEY).result.rows
    assert list(rows[0]) == ["system", "peak"]


def test_corrupt_entry_is_a_miss(tmp_path):
    cache = ResultCache(tmp_path / "c")
    path = cache.put(_entry())
    path.write_text("{ truncated")
    assert cache.get(KEY) is None


def test_schema_incompatible_entry_is_a_miss(tmp_path):
    cache = ResultCache(tmp_path / "c")
    path = cache.put(_entry())
    data = json.loads(path.read_text())
    del data["result"]
    path.write_text(json.dumps(data))
    assert cache.get(KEY) is None


def test_key_mismatch_is_a_miss(tmp_path):
    # An entry copied under the wrong filename must not be served.
    cache = ResultCache(tmp_path / "c")
    other = "cd" + "0" * 62
    src = cache.put(_entry())
    dst = cache.path_for(other)
    dst.parent.mkdir(parents=True, exist_ok=True)
    dst.write_text(src.read_text())
    assert cache.get(other) is None


def test_overwrite_replaces_entry(tmp_path):
    cache = ResultCache(tmp_path / "c")
    cache.put(_entry())
    fresh = _entry()
    fresh.wall_s = 9.0
    cache.put(fresh)
    assert cache.get(KEY).wall_s == 9.0
    assert cache.entries() == 1


def test_no_temp_files_left_behind(tmp_path):
    cache = ResultCache(tmp_path / "c")
    cache.put(_entry())
    leftovers = [
        p for p in (tmp_path / "c").rglob("*") if p.name.startswith(".tmp-")
    ]
    assert leftovers == []
