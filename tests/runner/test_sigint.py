"""SIGINT safety: deferral semantics and interrupt-proof publishes."""
# Fabricated wall_s literals are test fixtures, not model constants.
# simlint: ignore-file[SL302,SL303]

import os
import signal

import pytest

from repro.core.experiment import ExperimentResult
from repro.runner import CacheEntry, ResultCache, defer_sigint
from repro.campaign.journal import Journal

KEY = "cd" + "0" * 62


def _self_sigint():
    os.kill(os.getpid(), signal.SIGINT)


def _entry(key=KEY):
    r = ExperimentResult(
        exp_id="figX", title="t", xlabel="x", ylabel="y", notes=""
    )
    r.add("XT4", [1, 2], [1.0, 2.0])
    return CacheEntry(
        key=key, exp_id="figX", version="1.0.0", wall_s=0.1, result=r
    )


def test_sigint_is_deferred_then_delivered():
    reached_end = False
    with pytest.raises(KeyboardInterrupt):
        with defer_sigint():
            _self_sigint()
            reached_end = True  # the block runs to completion first
    assert reached_end


def test_no_signal_means_no_interrupt():
    with defer_sigint():
        pass


def test_nested_blocks_deliver_once_at_the_outermost():
    order = []
    with pytest.raises(KeyboardInterrupt):
        with defer_sigint():
            with defer_sigint():
                _self_sigint()
                order.append("inner done")
            order.append("outer body done")
    assert order == ["inner done", "outer body done"]


def test_previous_handler_is_restored():
    before = signal.getsignal(signal.SIGINT)
    with defer_sigint():
        pass
    assert signal.getsignal(signal.SIGINT) is before


def test_custom_handler_receives_the_deferred_signal():
    hits = []
    previous = signal.signal(signal.SIGINT, lambda s, f: hits.append(s))
    try:
        with defer_sigint():
            _self_sigint()
        assert hits == [signal.SIGINT]
    finally:
        signal.signal(signal.SIGINT, previous)


def test_cache_put_survives_sigint_mid_publish(tmp_path, monkeypatch):
    """Ctrl-C landing inside the atomic publish: the entry still fully
    appears, no temp debris remains, and the interrupt is delivered."""
    cache = ResultCache(tmp_path / "c")
    real_replace = os.replace

    def interrupted_replace(src, dst):
        _self_sigint()  # parked: put() is inside defer_sigint
        return real_replace(src, dst)

    monkeypatch.setattr(os, "replace", interrupted_replace)
    with pytest.raises(KeyboardInterrupt):
        cache.put(_entry())
    monkeypatch.undo()
    got = cache.get(KEY)
    assert got is not None and got.exp_id == "figX"
    assert not list((tmp_path / "c").rglob(".tmp-*"))


def test_journal_append_survives_sigint_mid_write(tmp_path, monkeypatch):
    journal = Journal(tmp_path)
    real_fsync = os.fsync

    def interrupted_fsync(fd):
        _self_sigint()
        return real_fsync(fd)

    monkeypatch.setattr(os, "fsync", interrupted_fsync)
    with pytest.raises(KeyboardInterrupt):
        journal.append({"cell": "a", "state": "leased", "attempt": 1})
    monkeypatch.undo()
    st = journal.replay(["a"])["a"]
    assert st.state == "leased"  # the record landed intact
    assert journal.skipped == 0


def test_corrupt_cache_entry_reads_as_miss(tmp_path):
    """Regression: torn entries (e.g. power loss mid-write on a
    filesystem without atomic rename) must read as misses, never raise."""
    cache = ResultCache(tmp_path / "c")
    path = cache.put(_entry())
    path.write_bytes(path.read_bytes()[: path.stat().st_size // 2])
    assert cache.get(KEY) is None
    assert KEY not in cache
