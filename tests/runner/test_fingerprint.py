"""Cache-key derivation: every ingredient must invalidate independently."""

import json

from repro.runner import (
    NO_FAULTS,
    cache_key,
    cache_key_for,
    driver_source,
    fault_plan_hash,
    machine_blob,
    sweep_blob,
)
from repro.runner.fingerprint import canonical_json, sha256_text

BASE = dict(
    driver_src="def run(): return 1\n",
    machines='{"xt4/SN":{}}',
    sweeps='{"GLOBAL_SWEEP":[128]}',
    version="1.0.0",
    fault_hash=NO_FAULTS,
)


def test_identical_inputs_identical_key():
    assert cache_key("fig05", **BASE) == cache_key("fig05", **BASE)


def test_exp_id_in_key():
    assert cache_key("fig05", **BASE) != cache_key("fig06", **BASE)


def test_driver_source_edit_misses():
    edited = dict(BASE, driver_src="def run(): return 2\n")
    assert cache_key("fig05", **BASE) != cache_key("fig05", **edited)


def test_machine_config_swap_misses():
    edited = dict(BASE, machines='{"xt4/SN":{"clock_ghz":2.8}}')
    assert cache_key("fig05", **BASE) != cache_key("fig05", **edited)


def test_sweep_change_misses():
    edited = dict(BASE, sweeps='{"GLOBAL_SWEEP":[128,256]}')
    assert cache_key("fig05", **BASE) != cache_key("fig05", **edited)


def test_version_bump_misses():
    edited = dict(BASE, version="1.0.1")
    assert cache_key("fig05", **BASE) != cache_key("fig05", **edited)


def test_fault_plan_attach_misses():
    edited = dict(BASE, fault_hash="ab" * 32)
    assert cache_key("fig05", **BASE) != cache_key("fig05", **edited)


def test_driver_source_is_module_source():
    src = driver_source("fig05")
    assert '@register("fig05"' in src and "def shape_checks" in src


def test_machine_blob_covers_both_modes():
    blob = json.loads(machine_blob())
    assert "xt4/SN" in blob and "xt4/VN" in blob
    assert blob["xt4/SN"]["node"]["processor"]


def test_sweep_blob_matches_common_constants():
    from repro.experiments.common import GLOBAL_SWEEP

    blob = json.loads(sweep_blob())
    assert blob["GLOBAL_SWEEP"] == list(GLOBAL_SWEEP)


def test_empty_fault_plan_differs_from_no_faults(tmp_path):
    plan = tmp_path / "plan.json"
    plan.write_text('{"version": 1, "events": []}')
    h = fault_plan_hash(str(plan))
    assert h != NO_FAULTS
    # Cosmetic JSON reformatting must not change the hash...
    plan.write_text('{"events":[],"version":1}')
    assert fault_plan_hash(str(plan)) == h


def test_semantic_fault_plan_change_changes_hash(tmp_path):
    a = tmp_path / "a.json"
    b = tmp_path / "b.json"
    a.write_text(json.dumps({"version": 1, "events": []}))
    b.write_text(json.dumps({
        "version": 1,
        "events": [{"t_s": 10.0, "kind": "node_crash", "node": 3}],
    }))
    assert fault_plan_hash(str(a)) != fault_plan_hash(str(b))


def test_cache_key_for_is_stable_and_fault_sensitive(tmp_path):
    assert cache_key_for("fig05") == cache_key_for("fig05")
    plan = tmp_path / "plan.json"
    plan.write_text('{"version": 1, "events": []}')
    assert cache_key_for("fig05") != cache_key_for("fig05", str(plan))


def test_canonical_json_is_order_insensitive():
    assert canonical_json({"b": 1, "a": 2}) == canonical_json({"a": 2, "b": 1})
    assert sha256_text("x") == sha256_text("x")
