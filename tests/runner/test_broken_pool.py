"""Pool-worker death: recovery, inline retry, per-experiment failure."""

import multiprocessing
import os

from repro.core import registry
from repro.obs import Tracer
from repro.runner import ExperimentRunner, ResultCache

CHEAP = ["fig05", "table1"]


def _die_in_pool_children(monkeypatch, and_inline=False):
    """Drivers that SIGKILL-equivalent their pool worker.

    ``multiprocessing.parent_process()`` is ``None`` only in the main
    process, so the bomb fires in pool children (which, under the fork
    start method, inherit the monkeypatched registry) but not in the
    inline retry — unless ``and_inline`` makes that raise too.
    """
    registry._ensure_loaded()
    for exp_id, original in list(registry._REGISTRY.items()):
        def bomb(exp_id=exp_id, original=original):
            if multiprocessing.parent_process() is not None:
                os._exit(42)  # hard death: no exception, no cleanup
            if and_inline:
                raise RuntimeError(f"inline boom: {exp_id}")
            return original()
        bomb.__module__ = original.__module__
        monkeypatch.setitem(registry._REGISTRY, exp_id, bomb)


def test_pool_death_recovers_via_inline_retry(tmp_path, monkeypatch):
    _die_in_pool_children(monkeypatch)
    cache = ResultCache(tmp_path / "cache")
    runner = ExperimentRunner(cache)
    outcomes = runner.run(CHEAP, jobs=2)
    assert [o.exp_id for o in outcomes] == sorted(CHEAP)
    assert all(not o.failed for o in outcomes)
    assert all(o.result is not None for o in outcomes)
    assert cache.entries() == 2  # recovered results are cached normally


def test_pool_death_then_inline_failure_is_per_experiment(
    tmp_path, monkeypatch
):
    _die_in_pool_children(monkeypatch, and_inline=True)
    cache = ResultCache(tmp_path / "cache")
    tracer = Tracer()
    runner = ExperimentRunner(cache, tracer=tracer)
    outcomes = runner.run(CHEAP, jobs=2)  # does NOT raise
    assert all(o.failed for o in outcomes)
    assert all(o.result is None for o in outcomes)
    for o in outcomes:
        assert "inline retry failed" in o.error
        assert "inline boom" in o.error
    assert cache.entries() == 0  # failures are never cached
    assert tracer.counter_totals()["runner.exp.failures"] == 2.0


def test_serial_runs_never_touch_the_pool_path(tmp_path, monkeypatch):
    _die_in_pool_children(monkeypatch)
    outcomes = ExperimentRunner(ResultCache(tmp_path / "c")).run(
        CHEAP, jobs=1
    )
    assert all(not o.failed for o in outcomes)
