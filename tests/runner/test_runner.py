"""ExperimentRunner: caching, invalidation, parallel/serial equivalence."""

import pytest

from repro.core import registry
from repro.core.report import render_csv, render_result
from repro.obs import Tracer
from repro.runner import ExperimentRunner, ResultCache

CHEAP = ["fig05", "table1"]


def _bomb_all_drivers(monkeypatch):
    """Replace every registered driver with one that fails the test."""
    registry._ensure_loaded()
    for exp_id, original in list(registry._REGISTRY.items()):
        def bomb(exp_id=exp_id):
            raise AssertionError(f"driver {exp_id} executed")
        # Keep the original module so the source fingerprint (and hence
        # the cache key) is unchanged — only execution must differ.
        bomb.__module__ = original.__module__
        monkeypatch.setitem(registry._REGISTRY, exp_id, bomb)


@pytest.fixture
def cache(tmp_path):
    return ResultCache(tmp_path / "cache")


def test_cold_run_executes_and_caches(cache):
    runner = ExperimentRunner(cache)
    outcomes = runner.run(CHEAP)
    assert [o.exp_id for o in outcomes] == sorted(CHEAP)
    assert all(not o.from_cache for o in outcomes)
    assert (runner.hits, runner.misses) == (0, 2)
    assert cache.entries() == 2


def test_warm_run_executes_no_driver(cache, monkeypatch):
    cold = ExperimentRunner(cache).run(CHEAP)
    _bomb_all_drivers(monkeypatch)
    warm = ExperimentRunner(cache).run(CHEAP)
    assert all(o.from_cache for o in warm)
    for a, b in zip(cold, warm):
        assert render_csv(a.result) == render_csv(b.result)
        assert render_result(a.result) == render_result(b.result)


def test_force_re_executes(cache):
    ExperimentRunner(cache).run(CHEAP)
    runner = ExperimentRunner(cache, force=True)
    outcomes = runner.run(CHEAP)
    assert all(not o.from_cache for o in outcomes)
    assert (runner.hits, runner.misses) == (0, 2)


def test_no_cache_never_stores(tmp_path):
    runner = ExperimentRunner(None)
    outcomes = runner.run(CHEAP)
    assert all(not o.from_cache for o in outcomes)
    assert all(o.key is None for o in outcomes)
    again = ExperimentRunner(None).run(CHEAP)
    assert all(not o.from_cache for o in again)


def test_driver_source_edit_invalidates(cache, monkeypatch):
    ExperimentRunner(cache).run(["fig05"])
    monkeypatch.setattr(
        "repro.runner.runner.driver_source",
        lambda exp_id: "# edited\n",
    )
    runner = ExperimentRunner(cache)
    outcomes = runner.run(["fig05"])
    assert not outcomes[0].from_cache
    assert runner.misses == 1


def test_machine_config_swap_invalidates(cache, monkeypatch):
    ExperimentRunner(cache).run(["fig05"])
    monkeypatch.setattr(
        "repro.runner.runner.machine_blob", lambda: '{"other": true}'
    )
    outcomes = ExperimentRunner(cache).run(["fig05"])
    assert not outcomes[0].from_cache


def test_sweep_change_invalidates(cache, monkeypatch):
    ExperimentRunner(cache).run(["fig05"])
    monkeypatch.setattr(
        "repro.runner.runner.sweep_blob", lambda: '{"GLOBAL_SWEEP": [1]}'
    )
    outcomes = ExperimentRunner(cache).run(["fig05"])
    assert not outcomes[0].from_cache


def test_version_bump_invalidates(cache, monkeypatch):
    ExperimentRunner(cache).run(["fig05"])
    monkeypatch.setattr("repro.runner.runner.__version__", "999.0.0")
    outcomes = ExperimentRunner(cache).run(["fig05"])
    assert not outcomes[0].from_cache


def test_fault_plan_invalidates_and_never_aliases(cache, tmp_path):
    plan = tmp_path / "plan.json"
    plan.write_text('{"version": 1, "events": []}')
    fault_free = ExperimentRunner(cache).run(["table1"])
    faulted = ExperimentRunner(cache, faults_path=str(plan)).run(["table1"])
    assert not faulted[0].from_cache  # distinct key, no aliasing
    assert fault_free[0].key != faulted[0].key
    # Each variant warms its own entry.
    assert ExperimentRunner(cache).run(["table1"])[0].from_cache
    warm = ExperimentRunner(cache, faults_path=str(plan)).run(["table1"])
    assert warm[0].from_cache


def test_identical_inputs_hit_with_identical_bytes(cache):
    cold = ExperimentRunner(cache).run(["fig05"])
    warm = ExperimentRunner(cache).run(["fig05"])
    assert warm[0].from_cache
    assert warm[0].key == cold[0].key
    assert render_csv(warm[0].result) == render_csv(cold[0].result)
    assert render_result(warm[0].result) == render_result(cold[0].result)


def test_parallel_matches_serial(cache, tmp_path):
    ids = ["fig02", "fig05", "table1"]
    serial = ExperimentRunner(None).run(ids, jobs=1)
    parallel = ExperimentRunner(ResultCache(tmp_path / "p")).run(ids, jobs=2)
    assert [o.exp_id for o in parallel] == [o.exp_id for o in serial]
    for a, b in zip(serial, parallel):
        assert a.result.to_dict() == b.result.to_dict()


def test_runner_counters_reach_tracer(cache):
    tracer = Tracer()
    ExperimentRunner(cache, tracer=tracer).run(CHEAP)
    totals = tracer.counter_totals("runner.")
    assert totals["runner.cache.misses"] == 2.0
    assert "runner.cache.hits" not in totals
    assert totals["runner.exp[fig05].wall_s"] > 0.0
    warm_tracer = Tracer()
    ExperimentRunner(cache, tracer=warm_tracer).run(CHEAP)
    assert warm_tracer.counter_totals()["runner.cache.hits"] == 2.0


def test_trace_dir_bypasses_cache_and_writes_traces(cache, tmp_path):
    ExperimentRunner(cache).run(["fig02"])
    trace_dir = tmp_path / "traces"
    trace_dir.mkdir()
    runner = ExperimentRunner(cache, trace_dir=str(trace_dir))
    outcomes = runner.run(["fig02"])
    assert not outcomes[0].from_cache  # executed despite warm cache
    assert (trace_dir / "fig02.trace.json").is_file()
    assert cache.entries() == 1  # and nothing new was stored


def test_unknown_id_raises_with_known_list(cache):
    with pytest.raises(registry.UnknownExperimentError, match="known:"):
        ExperimentRunner(cache).run(["fig99"])
