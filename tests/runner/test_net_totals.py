"""Network transfer totals: counted in workers, shipped through the pool,
stored in the cache — ``--jobs N`` reports what a serial run reports."""

import json

from repro.runner import ExperimentRunner, ResultCache

#: One network-simulating driver, one analytic, one table.
IDS = ["fig05", "fig12_13", "table1"]


def test_net_totals_survive_process_pool_fanout():
    pooled = {o.exp_id: o for o in ExperimentRunner(None).run(IDS, jobs=2)}
    fast, total = pooled["fig12_13"].net
    assert fast > 0 and total >= fast
    assert pooled["fig05"].net == (0, 0)
    assert pooled["table1"].net == (0, 0)
    # worker-side counting: the parent process totals must not be the
    # source (they'd be zero), and serial execution must agree exactly
    serial = {o.exp_id: o for o in ExperimentRunner(None).run(IDS, jobs=1)}
    for exp_id in IDS:
        assert serial[exp_id].net == pooled[exp_id].net


def test_cache_hit_reports_stored_net_totals(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    cold = {o.exp_id: o for o in ExperimentRunner(cache).run(IDS, jobs=2)}
    warm = {o.exp_id: o for o in ExperimentRunner(cache).run(IDS)}
    for exp_id in IDS:
        assert warm[exp_id].from_cache
        assert warm[exp_id].net == cold[exp_id].net
    assert warm["fig12_13"].net[0] > 0


def test_entries_predating_net_field_still_load(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    [o] = ExperimentRunner(cache).run(["fig05"])
    path = cache.path_for(o.key)
    data = json.loads(path.read_text())
    data.pop("net", None)
    path.write_text(json.dumps(data))
    entry = cache.get(o.key)
    assert entry is not None and entry.net is None
    [warm] = ExperimentRunner(cache).run(["fig05"])
    assert warm.from_cache and warm.net is None
