"""Hybrid analytic/DES fast-path equivalence (ISSUE 9 tentpole).

``SimNetwork`` prices *uncontended* transfers by the closed-form LogGP
cost as a single scheduled completion (SMPI practice) and falls back to
full DES the moment any shared resource is busy, a tracer or race
tracker needs to observe the holds, or faults are enabled. The contract
is byte-identicality: experiment rows and counter totals must not change
by a single bit between ``hybrid=True`` and ``hybrid=False``.
"""

import pytest

from repro.faults import FaultEvent, FaultPlan
from repro.machine.configs import xt4
from repro.mpi.job import MPIJob
from repro.network.simnet import hybrid_mode, set_hybrid_default
from repro.obs import Tracer


def _mixed_main(comm):
    """Both traffic shapes: sequential pingpong legs (idle routes — fast
    path eligible) and simultaneous ring exchange (contended — DES)."""
    # Distance-2 neighbours: adjacent ranks' routes share the middle
    # link, so the simultaneous exchange below genuinely contends.
    peer = (comm.rank + 2) % comm.size
    left = (comm.rank - 2) % comm.size
    for i in range(5):
        if comm.rank == 0:
            yield from comm.send(b"p" * 4096, dest=1, nbytes=4096, tag=100 + i)
        elif comm.rank == 1:
            yield from comm.recv(source=0, tag=100 + i)
    for lap in range(2):
        yield from comm.sendrecv(b"r" * 32768, dest=peer, source=left, tag=lap)
    yield from comm.barrier()
    return comm.wtime()


def _run(hybrid, plan=None, tracer=None):
    with hybrid_mode(hybrid):
        job = MPIJob(xt4("SN"), 8, tracer=tracer, faults=plan)
        result = job.run(_mixed_main)
    return job, result


def _snapshot(job, result):
    """Everything a hybrid run could possibly perturb, bit-for-bit."""
    net = job.network
    return {
        "elapsed_s": result.elapsed_s,
        "returns": list(result.returns),
        "transfers_completed": net.transfers_completed,
        "link_bytes": dict(net.link_bytes),
        "link_busy_s": dict(net.link_busy_s),
    }


def test_hybrid_mode_context_manager_restores_default():
    assert set_hybrid_default(True) is True  # repo default
    with hybrid_mode(False):
        with hybrid_mode(True):
            pass
    job, _ = _run(hybrid=True)
    assert job.network.hybrid is True


def test_hybrid_vs_des_bit_identical_counters_and_results():
    job_fast, res_fast = _run(hybrid=True)
    job_slow, res_slow = _run(hybrid=False)
    assert _snapshot(job_fast, res_fast) == _snapshot(job_slow, res_slow)
    # The fast path actually ran (pingpong legs) AND fell back under
    # contention (simultaneous ring exchange) — both sides exercised.
    assert job_fast.network.fast_transfers > 0
    assert job_fast.network.fast_transfers < job_fast.network.transfers_completed
    assert job_slow.network.fast_transfers == 0


def test_fast_path_disables_itself_under_tracer():
    job, _ = _run(hybrid=True, tracer=Tracer())
    assert job.network.fast_transfers == 0
    assert job.network.transfers_completed > 0


STALL_AT_S = 1e-5
STALL_FOR_S = 2e-4


def test_fast_path_disables_itself_under_faults():
    plan = FaultPlan(
        [FaultEvent(t_s=STALL_AT_S, kind="nic_stall", node=2,
                    duration_s=STALL_FOR_S)]
    )
    job_fast, res_fast = _run(hybrid=True, plan=plan)
    job_slow, res_slow = _run(hybrid=False, plan=plan)
    assert job_fast.network.fast_transfers == 0
    assert job_fast.network.transfers_completed > 0
    assert _snapshot(job_fast, res_fast) == _snapshot(job_slow, res_slow)


@pytest.mark.parametrize("exp_id", ["fig12_13", "fig22"])
def test_driver_rows_bit_identical_across_hybrid_modes(exp_id):
    from repro.core import get_experiment

    driver = get_experiment(exp_id)
    with hybrid_mode(True):
        fast = driver().to_dict()
    with hybrid_mode(False):
        slow = driver().to_dict()
    assert fast == slow


def test_fig22_des_companion_bit_identical_across_hybrid_modes():
    from repro.experiments.fig22_s3d import des_companion

    with hybrid_mode(True):
        fast = des_companion()
    with hybrid_mode(False):
        slow = des_companion()
    assert fast == slow
