"""Tests for the discrete-event network: contention shapes from Figs 12-13."""

import pytest

from repro.machine import xt4
from repro.network import NetworkModel, SimNetwork
from repro.simengine import Simulator


def run_transfers(machine, transfers):
    """Run a set of (src, dst, nbytes) transfers concurrently; return spans."""
    sim = Simulator()
    net = SimNetwork(sim, machine)
    model = NetworkModel(machine)
    spans = {}

    def mover(key, src, dst, nbytes):
        start = sim.now
        yield from net.transfer(src, dst, nbytes, model.base_latency_s(1))
        spans[key] = (start, sim.now)

    for i, (src, dst, nbytes) in enumerate(transfers):
        sim.spawn(mover(i, src, dst, nbytes))
    sim.run()
    return spans, net


def test_single_transfer_time_matches_model():
    machine = xt4("SN")
    spans, net = run_transfers(machine, [(0, 1, 1_000_000)])
    start, end = spans[0]
    model = NetworkModel(machine)
    expected = model.base_latency_s(1) + 1_000_000 / (net.bottleneck_bw_GBs() * 1e9)
    assert end - start == pytest.approx(expected, rel=1e-9)


def test_two_messages_same_path_serialize():
    machine = xt4("SN")
    nbytes = 4_000_000
    solo, net = run_transfers(machine, [(0, 1, nbytes)])
    both, _ = run_transfers(machine, [(0, 1, nbytes), (0, 1, nbytes)])
    solo_time = solo[0][1] - solo[0][0]
    finish = max(e for _, e in both.values())
    # Two messages through one NIC/link take ~2x one message's hold time.
    hold = nbytes / (net.bottleneck_bw_GBs() * 1e9)
    assert finish == pytest.approx(solo_time + hold, rel=0.01)


def test_disjoint_paths_do_not_contend():
    machine = xt4("SN")
    nbytes = 4_000_000
    spans, _ = run_transfers(machine, [(0, 1, nbytes), (2, 3, nbytes)])
    (s0, e0), (s1, e1) = spans[0], spans[1]
    assert e0 == pytest.approx(e1)  # both finish together: no shared resource


def test_opposite_directions_use_distinct_links():
    machine = xt4("SN")
    nbytes = 4_000_000
    spans, _ = run_transfers(machine, [(0, 1, nbytes), (1, 0, nbytes)])
    e0, e1 = spans[0][1], spans[1][1]
    solo, _ = run_transfers(machine, [(0, 1, nbytes)])
    solo_end = solo[0][1]
    assert e0 == pytest.approx(solo_end, rel=1e-9)
    assert e1 == pytest.approx(solo_end, rel=1e-9)


def test_intranode_transfer_skips_nic():
    machine = xt4("VN")
    sim = Simulator()
    net = SimNetwork(sim, machine)

    def mover():
        yield from net.transfer(0, 0, 1_000_000, latency_s=0.0)

    sim.spawn(mover())
    sim.run()
    expected = 0.8e-6 + 1_000_000 / (net.intranode_bw_GBs() * 1e9)
    assert sim.now == pytest.approx(expected, rel=1e-9)
    assert net.transfers_completed == 1


def test_negative_bytes_rejected():
    machine = xt4("SN")
    sim = Simulator()
    net = SimNetwork(sim, machine)

    def mover():
        yield from net.transfer(0, 1, -1, 0.0)

    sim.spawn(mover())
    with pytest.raises(ValueError):
        sim.run()


def test_many_crossing_transfers_complete_without_deadlock():
    machine = xt4("SN")
    # All-to-all-ish burst among 8 nodes spread across the torus.
    nodes = [0, 5, 17, 100, 233, 512, 901, 1400]
    transfers = [
        (a, b, 100_000) for a in nodes for b in nodes if a != b
    ]
    spans, net = run_transfers(machine, transfers)
    assert len(spans) == len(transfers)
    assert net.transfers_completed == len(transfers)
