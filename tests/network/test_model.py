"""Tests for the analytic network model against the paper's Figures 2-3."""

import pytest

from repro.machine import xt3, xt4
from repro.network import NetworkModel


@pytest.fixture
def net_xt3():
    return NetworkModel(xt3())


@pytest.fixture
def net_xt4_sn():
    return NetworkModel(xt4("SN"))


@pytest.fixture
def net_xt4_vn():
    return NetworkModel(xt4("VN"))


# ------------------------------------------------------------------- latency
def test_latency_xt4_sn_beats_xt3(net_xt3, net_xt4_sn):
    # Fig. 2: XT4-SN ~4.5us best case vs XT3 ~6us.
    assert net_xt4_sn.pingpong_latency_us("min") == pytest.approx(4.55, rel=0.02)
    assert net_xt3.pingpong_latency_us("min") == pytest.approx(6.05, rel=0.02)


def test_latency_vn_worst_case_approaches_18us(net_xt4_vn):
    worst = net_xt4_vn.pingpong_latency_us("max")
    assert 15.0 < worst < 20.0


def test_latency_vn_above_sn_everywhere(net_xt4_sn, net_xt4_vn):
    for which in ("min", "avg", "max"):
        assert net_xt4_vn.pingpong_latency_us(which) > net_xt4_sn.pingpong_latency_us(
            which
        )


def test_latency_ordering_min_avg_max(net_xt4_vn, net_xt4_sn, net_xt3):
    for net in (net_xt4_vn, net_xt4_sn, net_xt3):
        lmin = net.pingpong_latency_us("min")
        lavg = net.pingpong_latency_us("avg")
        lmax = net.pingpong_latency_us("max")
        assert lmin <= lavg <= lmax


def test_latency_invalid_which(net_xt3):
    with pytest.raises(ValueError):
        net_xt3.pingpong_latency_us("median")


def test_base_latency_validation(net_xt3):
    with pytest.raises(ValueError):
        net_xt3.base_latency_s(hops=-1)
    with pytest.raises(ValueError):
        net_xt3.base_latency_s(contended_fraction=1.5)


def test_vn_contention_grows_with_job_size(net_xt4_vn):
    small = net_xt4_vn.pingpong_latency_us("max", job_nodes=8)
    large = net_xt4_vn.pingpong_latency_us("max", job_nodes=4096)
    assert large > small


# ---------------------------------------------------------------- bandwidth
def test_pingpong_bw_matches_paper(net_xt3, net_xt4_sn):
    # Fig. 3: XT3 1.15 GB/s; XT4 just over 2 GB/s.
    assert net_xt3.pingpong_bandwidth_GBs() == pytest.approx(1.15, rel=0.02)
    assert net_xt4_sn.pingpong_bandwidth_GBs() == pytest.approx(2.1, rel=0.02)


def test_vn_splits_injection_bandwidth(net_xt4_sn, net_xt4_vn):
    assert net_xt4_vn.task_bandwidth_GBs() == pytest.approx(
        net_xt4_sn.task_bandwidth_GBs() / 2
    )


def test_ring_bandwidth_orderings(net_xt3, net_xt4_sn, net_xt4_vn):
    # XT4-SN improves both ring bandwidths over XT3 (paper 5.1.1).
    assert net_xt4_sn.natural_ring_bandwidth_GBs() > net_xt3.natural_ring_bandwidth_GBs()
    assert net_xt4_sn.random_ring_bandwidth_GBs(
        job_nodes=512
    ) > net_xt3.random_ring_bandwidth_GBs(job_nodes=512)
    # VN per-core natural ring slightly worse than XT3 per core ...
    assert (
        net_xt4_vn.natural_ring_bandwidth_GBs()
        < net_xt3.natural_ring_bandwidth_GBs()
    )
    # ... but per-socket better.
    assert (
        2 * net_xt4_vn.natural_ring_bandwidth_GBs()
        > net_xt3.natural_ring_bandwidth_GBs()
    )


def test_random_ring_below_natural_ring(net_xt4_sn):
    assert (
        net_xt4_sn.random_ring_bandwidth_GBs()
        < net_xt4_sn.natural_ring_bandwidth_GBs()
    )


def test_pt2pt_time_monotone_in_size(net_xt4_sn):
    t1 = net_xt4_sn.pt2pt_time_s(1_000)
    t2 = net_xt4_sn.pt2pt_time_s(1_000_000)
    assert t2 > t1


def test_pt2pt_zero_bytes_is_latency(net_xt4_sn):
    assert net_xt4_sn.pt2pt_time_s(0, hops=1) == pytest.approx(
        net_xt4_sn.base_latency_s(1)
    )


def test_pt2pt_validation(net_xt4_sn):
    with pytest.raises(ValueError):
        net_xt4_sn.pt2pt_time_s(-5)
    with pytest.raises(ValueError):
        net_xt4_sn.task_bandwidth_GBs(0)


def test_intranode_cheaper_than_network_for_small_messages(net_xt4_vn):
    assert net_xt4_vn.intranode_time_s(8) < net_xt4_vn.pt2pt_time_s(8)


def test_bisection_bw_scales_with_job(net_xt4_sn):
    small = net_xt4_sn.bisection_bw_GBs(job_nodes=64)
    large = net_xt4_sn.bisection_bw_GBs(job_nodes=4096)
    assert large > small


def test_bisection_unchanged_xt3_to_xt4(net_xt3, net_xt4_sn):
    # Same sustained link bandwidth => same bisection for same job size:
    # the PTRANS observation (Fig. 10).
    b3 = net_xt3.bisection_bw_GBs(job_nodes=1000)
    b4 = net_xt4_sn.bisection_bw_GBs(job_nodes=1000)
    assert b4 == pytest.approx(b3, rel=0.15)  # sub-torus shapes differ slightly
