"""Placement-sensitivity study: the paper's PTRANS 'job layout' variance.

Figure 10's discussion notes PTRANS results fall "within typical
variances for PTRANS due to job layout topology". Here the DES network
makes that variance observable: the same ring exchange is slower under a
randomized rank placement (longer routes, shared links) than under the
contiguous default.
"""

import pytest

from repro.machine import xt4
from repro.mpi import MPIJob
from repro.network import Placement


def ring_elapsed(strategy: str, seed: int = 0, ntasks: int = 16,
                 nbytes: int = 2_000_000) -> float:
    def main(comm):
        right = (comm.rank + 1) % comm.size
        left = (comm.rank - 1) % comm.size
        yield from comm.sendrecv(b"", dest=right, source=left, nbytes=nbytes)
        return comm.wtime()

    job = MPIJob(xt4("SN"), ntasks, placement=strategy, seed=seed)
    return job.run(main).elapsed_s


def test_random_placement_no_faster_than_contiguous():
    contiguous = ring_elapsed("contiguous")
    randomized = ring_elapsed("random", seed=3)
    assert randomized >= contiguous * 0.99


def test_random_placement_adds_hops():
    cont = Placement(xt4("SN"), 16, strategy="contiguous")
    rand = Placement(xt4("SN"), 16, strategy="random", seed=3)
    cont_hops = sum(cont.hops(r, (r + 1) % 16) for r in range(16))
    rand_hops = sum(rand.hops(r, (r + 1) % 16) for r in range(16))
    assert rand_hops > cont_hops


def test_layout_variance_across_seeds():
    """Different random layouts give measurably different times — the
    'typical variance' the paper attributes to layout."""
    times = {ring_elapsed("random", seed=s) for s in range(4)}
    assert len(times) > 1
