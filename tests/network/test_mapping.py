"""Tests for rank placement."""

import pytest

from repro.machine import xt4
from repro.network import Placement


def test_contiguous_sn_one_rank_per_node():
    p = Placement(xt4("SN"), 8)
    assert [p.node_of(r) for r in range(8)] == list(range(8))
    assert all(p.core_of(r) == 0 for r in range(8))
    assert p.num_nodes_used == 8


def test_contiguous_vn_pairs_share_node():
    p = Placement(xt4("VN"), 8)
    assert [p.node_of(r) for r in range(8)] == [0, 0, 1, 1, 2, 2, 3, 3]
    assert [p.core_of(r) for r in range(8)] == [0, 1] * 4
    assert p.same_node(0, 1)
    assert not p.same_node(1, 2)
    assert p.num_nodes_used == 4


def test_hops_zero_for_colocated():
    p = Placement(xt4("VN"), 4)
    assert p.hops(0, 1) == 0
    assert p.hops(0, 2) >= 1


def test_tasks_sharing_nic():
    vn = Placement(xt4("VN"), 8)
    sn = Placement(xt4("SN"), 8)
    assert vn.tasks_sharing_nic(0) == 2
    assert sn.tasks_sharing_nic(0) == 1
    # Odd task count: last VN node holds one task.
    odd = Placement(xt4("VN"), 5)
    assert odd.tasks_sharing_nic(4) == 1


def test_random_placement_is_seeded_permutation():
    a = Placement(xt4("SN"), 32, strategy="random", seed=7)
    b = Placement(xt4("SN"), 32, strategy="random", seed=7)
    c = Placement(xt4("SN"), 32, strategy="random", seed=8)
    nodes_a = [a.node_of(r) for r in range(32)]
    assert nodes_a == [b.node_of(r) for r in range(32)]
    assert nodes_a != [c.node_of(r) for r in range(32)]
    assert sorted(nodes_a) == list(range(32))


def test_validation():
    with pytest.raises(ValueError):
        Placement(xt4("SN"), 0)
    with pytest.raises(ValueError):
        Placement(xt4("SN"), 10, strategy="hilbert")
    m = xt4("SN")
    with pytest.raises(ValueError):
        Placement(m, m.max_tasks + 1)


def test_ranks_on_node():
    p = Placement(xt4("VN"), 6)
    assert p.ranks_on_node(0) == [0, 1]
    assert p.ranks_on_node(2) == [4, 5]
