"""Tests for link utilization / hotspot diagnostics on the DES network."""

import pytest

from repro.machine import xt4
from repro.mpi import MPIJob


def run_job(ntasks, fn, mode="SN"):
    job = MPIJob(xt4(mode), ntasks)
    result = job.run(fn)
    return job, result


def test_link_bytes_accumulate():
    def main(comm):
        if comm.rank == 0:
            yield from comm.send(b"", dest=1, nbytes=1_000_000)
        elif comm.rank == 1:
            yield from comm.recv(source=0)
        return None

    job, _ = run_job(2, main)
    assert sum(job.network.link_bytes.values()) == 1_000_000
    assert job.network.transfers_completed == 1


def test_multi_hop_charges_every_link():
    def main(comm):
        if comm.rank == 0:
            yield from comm.send(b"", dest=5, nbytes=500_000)
        elif comm.rank == 5:
            yield from comm.recv(source=0)
        return None

    job, _ = run_job(6, main)
    hops = job.placement.hops(0, 5)
    assert hops > 1
    assert len(job.network.link_bytes) == hops
    assert sum(job.network.link_bytes.values()) == 500_000 * hops


def test_hotspot_report_ranks_by_bytes():
    def main(comm):
        # Everyone sends to rank 0: its incoming links are the hotspots.
        if comm.rank != 0:
            yield from comm.send(b"", dest=0, nbytes=100_000 * comm.rank)
        else:
            for _ in range(comm.size - 1):
                yield from comm.recv()
        return None

    job, _ = run_job(6, main)
    report = job.network.hotspot_report(top=3)
    assert len(report) == 3
    bytes_ranked = [b for _, b in report]
    assert bytes_ranked == sorted(bytes_ranked, reverse=True)


def test_utilization_between_zero_and_one():
    def main(comm):
        if comm.rank == 0:
            yield from comm.send(b"", dest=1, nbytes=8_000_000)
        elif comm.rank == 1:
            yield from comm.recv(source=0)
        yield from comm.barrier()
        return None

    job, _ = run_job(2, main)
    (link, _), = job.network.hotspot_report(top=1)
    u = job.network.utilization(link)
    assert 0.0 < u <= 1.0
    # Untouched links report zero.
    other = (link[0], (link[1] + 1) % 3, link[2])
    assert job.network.utilization(other) == 0.0


def test_intranode_traffic_not_counted_as_link_traffic():
    def main(comm):
        if comm.rank == 0:
            yield from comm.send(b"", dest=1, nbytes=1_000_000)
        elif comm.rank == 1:
            yield from comm.recv(source=0)
        return None

    job, _ = run_job(2, main, mode="VN")  # both ranks on one node
    assert job.network.link_bytes == {}
    assert job.network.transfers_completed == 1
