"""Regression: tracer-counter and byte-accounting network diagnostics agree.

:meth:`SimNetwork.hotspot_report` and :meth:`SimNetwork.utilization` are
computed from tracer counters when tracing is on and from the in-memory
dicts otherwise; identical runs must produce identical answers either
way.
"""

import pytest

from repro.machine.configs import xt4
from repro.mpi.job import MPIJob
from repro.network.simnet import link_label
from repro.obs import Tracer


def _ring_main(comm):
    """8-node ring: each rank passes 64 KiB around the ring twice."""
    right = (comm.rank + 1) % comm.size
    left = (comm.rank - 1) % comm.size
    for lap in range(2):
        yield from comm.sendrecv(b"r" * 65536, dest=right, source=left, tag=lap)
    yield from comm.barrier()
    return comm.wtime()


def _run(tracer=None):
    job = MPIJob(xt4("SN"), 8, tracer=tracer)
    result = job.run(_ring_main)
    return job, result


def test_hotspot_report_identical_across_backends():
    job_plain, res_plain = _run()
    job_traced, res_traced = _run(Tracer())
    assert res_plain.elapsed_s == res_traced.elapsed_s
    plain = job_plain.network.hotspot_report(top=100)
    traced = job_traced.network.hotspot_report(top=100)
    assert dict(plain) == pytest.approx(dict(traced))
    assert plain, "ring pattern should load some links"
    # Fallback dicts stay empty while tracing: the counters are the truth.
    assert job_traced.network.link_bytes == {}
    assert job_traced.network.link_busy_s == {}
    assert job_plain.network.link_bytes != {}


def test_utilization_identical_across_backends():
    job_plain, _ = _run()
    job_traced, _ = _run(Tracer())
    links = [ln for ln, _b in job_plain.network.hotspot_report(top=100)]
    for ln in links:
        assert job_plain.network.utilization(ln) == pytest.approx(
            job_traced.network.utilization(ln)
        )
        assert job_plain.network.utilization(ln) > 0.0


def test_hotspot_report_tie_break_agrees_across_backends():
    """Links with identical byte counts rank by repr(link) on *both*
    backends — without the tie-break the two reports could interleave
    tied links differently and silently disagree."""
    from repro.machine import xt4
    from repro.network import NetworkModel, SimNetwork
    from repro.simengine import Simulator

    def run(tracer=None):
        sim = Simulator(tracer=tracer)
        machine = xt4("SN")
        net = SimNetwork(sim, machine)
        model = NetworkModel(machine)

        def mover(src, dst):
            # One hop each, equal bytes: three exactly-tied links.
            yield from net.transfer(src, dst, 50_000, model.base_latency_s(1))

        for src, dst in ((0, 1), (1, 2), (2, 3)):
            sim.spawn(mover(src, dst))
        sim.run()
        return net.hotspot_report(top=10)

    plain = run()
    traced = run(Tracer())
    assert plain == traced  # same links, same bytes, same ORDER
    byte_counts = {b for _ln, b in plain}
    assert len(byte_counts) == 1, "test requires an actual tie"
    links = [ln for ln, _b in plain]
    assert links == sorted(links, key=repr)


@pytest.mark.parametrize("hybrid", [False, True])
def test_diagnostics_agree_across_backends_in_hybrid_mode(hybrid):
    """Counter-path (traced, always full DES) and resource-path (untraced,
    optionally hybrid) must agree — same links, same bytes, same ORDER —
    even when the fast path skips the resource holds entirely."""
    from repro.network.simnet import hybrid_mode

    with hybrid_mode(hybrid):
        job_plain, res_plain = _run()
    job_traced, res_traced = _run(Tracer())
    assert res_plain.elapsed_s == res_traced.elapsed_s
    plain = job_plain.network.hotspot_report(top=100)
    traced = job_traced.network.hotspot_report(top=100)
    assert [ln for ln, _b in plain] == [ln for ln, _b in traced]
    assert dict(plain) == pytest.approx(dict(traced))
    for ln, _b in plain:
        assert job_plain.network.utilization(ln) == pytest.approx(
            job_traced.network.utilization(ln)
        )


def test_link_label_is_stable():
    assert link_label(((0, 1, 0), 0, 1)) == "0,1,0.+x"
    assert link_label(((3, 0, 2), 2, -1)) == "3,0,2.-z"
    assert link_label(((1, 2, 3), 1, 1)) == "1,2,3.+y"


def test_transfer_spans_tagged_with_route(tmp_path):
    tracer = Tracer()
    job, _ = _run(tracer)
    xfers = [s for s in tracer.spans if s.name == "net.xfer"]
    assert xfers
    for span in xfers:
        assert {"src", "dst", "bytes"} <= set(span.args)
        assert ("hops" in span.args) != span.args.get("intra_node", False)
