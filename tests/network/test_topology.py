"""Tests for the 3D torus topology."""

import pytest
from hypothesis import given, strategies as st

from repro.network import Torus3D

dims_strategy = st.tuples(
    st.integers(min_value=1, max_value=6),
    st.integers(min_value=1, max_value=6),
    st.integers(min_value=1, max_value=6),
)


def test_invalid_dims_rejected():
    with pytest.raises(ValueError):
        Torus3D((0, 2, 2))


def test_num_nodes():
    assert Torus3D((2, 3, 4)).num_nodes == 24


def test_coord_node_id_roundtrip():
    t = Torus3D((3, 4, 5))
    for nid in t:
        assert t.node_id(t.coord(nid)) == nid


def test_coord_out_of_range():
    t = Torus3D((2, 2, 2))
    with pytest.raises(ValueError):
        t.coord(8)
    with pytest.raises(ValueError):
        t.node_id((2, 0, 0))


def test_hops_to_self_is_zero():
    t = Torus3D((4, 4, 4))
    assert t.hops(5, 5) == 0


def test_hops_uses_wraparound():
    t = Torus3D((8, 1, 1))
    # 0 -> 7 is one hop backwards around the ring, not 7 forwards.
    assert t.hops(0, 7) == 1
    assert t.hops(0, 4) == 4  # antipodal


def test_hops_symmetric():
    t = Torus3D((4, 5, 6))
    for a, b in [(0, 17), (3, 100), (42, 99)]:
        assert t.hops(a, b) == t.hops(b, a)


def test_diameter():
    assert Torus3D((4, 4, 4)).diameter == 6
    assert Torus3D((8, 1, 1)).diameter == 4
    assert Torus3D((5, 5, 5)).diameter == 6


def test_route_length_equals_hops():
    t = Torus3D((4, 5, 6))
    for a, b in [(0, 0), (0, 1), (0, 119), (17, 80)]:
        assert len(t.route(a, b)) == t.hops(a, b)


def test_route_is_dimension_ordered():
    t = Torus3D((4, 4, 4))
    route = t.route(0, t.node_id((2, 1, 3)))
    dims_in_order = [d for _, d, _ in route]
    assert dims_in_order == sorted(dims_in_order)


def test_route_links_form_connected_path():
    t = Torus3D((5, 4, 3))
    a, b = 0, t.node_id((3, 2, 1))
    cur = list(t.coord(a))
    for coord, d, direction in t.route(a, b):
        assert tuple(cur) == coord
        cur[d] = (cur[d] + direction) % t.dims[d]
    assert tuple(cur) == t.coord(b)


def test_neighbors_count_and_distance():
    t = Torus3D((4, 4, 4))
    n = t.neighbors(0)
    assert len(n) == 6
    assert all(t.hops(0, x) == 1 for x in n)


def test_neighbors_small_ring_dedup():
    # In a 2-ring, +1 and -1 reach the same node.
    t = Torus3D((2, 1, 1))
    assert t.neighbors(0) == [1]


def test_avg_hops_even_ring():
    # 1D even ring of size 8: mean shortest distance = 2 = 8/4.
    assert Torus3D((8, 1, 1)).avg_hops_random_pair == pytest.approx(2.0)


def test_avg_hops_odd_ring():
    # size 5: (25-1)/20 = 1.2
    assert Torus3D((5, 1, 1)).avg_hops_random_pair == pytest.approx(1.2)


def test_num_directed_links():
    assert Torus3D((4, 4, 4)).num_directed_links == 6 * 64
    assert Torus3D((2, 1, 1)).num_directed_links == 2  # collapsed ring
    assert Torus3D((1, 1, 1)).num_directed_links == 0


def test_bisection_links():
    # Cut the largest dimension (4): 2 dirs x 2 (wrap) x 2x3 cross-section.
    assert Torus3D((2, 3, 4)).bisection_links() == 2 * 2 * 2 * 3
    assert Torus3D((1, 1, 1)).bisection_links() == 0


def test_sub_torus_dims_encloses_and_bounded():
    t = Torus3D((14, 16, 24))
    for n in [1, 7, 100, 1024, t.num_nodes]:
        dims = t.sub_torus_dims(n)
        assert dims[0] * dims[1] * dims[2] >= n
        for d, full in zip(dims, t.dims):
            assert 1 <= d <= full


def test_sub_torus_dims_validation():
    t = Torus3D((4, 4, 4))
    with pytest.raises(ValueError):
        t.sub_torus_dims(0)
    with pytest.raises(ValueError):
        t.sub_torus_dims(65)


@given(dims_strategy, st.integers(min_value=0, max_value=10_000))
def test_hops_le_diameter_property(dims, seed):
    t = Torus3D(dims)
    a = seed % t.num_nodes
    b = (seed * 7 + 3) % t.num_nodes
    assert 0 <= t.hops(a, b) <= t.diameter


@given(dims_strategy, st.integers(min_value=0, max_value=10_000))
def test_route_matches_hops_property(dims, seed):
    t = Torus3D(dims)
    a = seed % t.num_nodes
    b = (seed * 13 + 1) % t.num_nodes
    assert len(t.route(a, b)) == t.hops(a, b)
