"""Property-based invariants of the analytic network model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.machine import xt3, xt4
from repro.mpi import CollectiveCostModel
from repro.network import NetworkModel


@given(
    hops=st.integers(min_value=0, max_value=30),
    frac=st.floats(min_value=0.0, max_value=1.0),
    nodes=st.integers(min_value=2, max_value=6000),
)
def test_latency_monotone_in_everything(hops, frac, nodes):
    net = NetworkModel(xt4("VN"))
    base = net.base_latency_s(hops, frac, nodes)
    assert base > 0
    assert net.base_latency_s(hops + 1, frac, nodes) >= base
    assert net.base_latency_s(hops, min(1.0, frac + 0.1), nodes) >= base
    assert net.base_latency_s(hops, frac, min(6000, nodes * 2)) >= base


@given(nbytes=st.floats(min_value=0, max_value=1e9))
def test_pt2pt_time_superadditive_in_bytes(nbytes):
    """Sending m bytes then m more is never cheaper than 2m at once
    (latency paid twice)."""
    net = NetworkModel(xt4("SN"))
    once = net.pt2pt_time_s(2 * nbytes)
    twice = 2 * net.pt2pt_time_s(nbytes)
    assert twice >= once - 1e-15


@given(p=st.integers(min_value=2, max_value=20000))
def test_collective_costs_monotone_in_p(p):
    c1 = CollectiveCostModel.for_machine(NetworkModel(xt3()), p)
    c2 = CollectiveCostModel.for_machine(NetworkModel(xt3()), min(20000, 2 * p))
    assert c2.barrier_s() >= c1.barrier_s()
    assert c2.allreduce_s(8) >= c1.allreduce_s(8)
    assert c2.alltoall_s(64) >= c1.alltoall_s(64) * 0.99


@given(job_nodes=st.integers(min_value=1, max_value=6000))
def test_bisection_positive_and_bounded(job_nodes):
    net = NetworkModel(xt4("SN"))
    b = net.bisection_bw_GBs(job_nodes)
    full = net.bisection_bw_GBs(None)
    assert 0 <= b <= full * 1.5  # sub-torus rounding can slightly overshoot


@settings(max_examples=30)
@given(which=st.sampled_from(["min", "avg", "max"]),
       mode=st.sampled_from(["SN", "VN"]))
def test_bandwidth_never_exceeds_injection(which, mode):
    net = NetworkModel(xt4(mode))
    bw = net.pingpong_bandwidth_GBs(which)
    assert 0 < bw <= net.nic.mpi_bw_GBs + 1e-12  # simlint: ignore[SL302] — float tolerance
