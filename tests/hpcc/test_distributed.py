"""Tests for the real distributed global benchmarks on the simulated MPI."""

import numpy as np
import pytest

from repro.hpcc import (
    DistributedFFT,
    DistributedLU,
    DistributedPTRANS,
    DistributedRandomAccess,
)
from repro.machine import xt3, xt4


# -------------------------------------------------------------------- LU
def _system(n, seed=0, complex_valued=False):
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((n, n)) + n * np.eye(n)
    if complex_valued:
        a = a + 1j * rng.standard_normal((n, n))
    x = rng.standard_normal(n) + (1j if complex_valued else 0)
    return a, x, a @ x


def test_lu_matches_direct_solution():
    a, x_true, b = _system(48)
    x, job = DistributedLU(xt4("VN"), 4, block=8).solve(a, b)
    assert np.allclose(x, x_true, atol=1e-9)
    assert job.elapsed_s > 0


def test_lu_complex_support():
    # The AORSA case: complex coefficients (paper §6.5).
    a, x_true, b = _system(32, seed=1, complex_valued=True)
    x, _ = DistributedLU(xt4("SN"), 4, block=8).solve(a, b)
    assert np.allclose(x, x_true, atol=1e-9)


def test_lu_needs_pivoting_case():
    # Zero diagonal entry: only correct with the distributed pivot swaps.
    a = np.array(
        [
            [0.0, 2.0, 1.0, 0.5],
            [1.0, 0.0, 0.5, 1.0],
            [0.5, 1.0, 0.0, 2.0],
            [2.0, 0.5, 1.0, 0.0],
        ]
    )
    x_true = np.array([1.0, -2.0, 3.0, 0.5])
    x, _ = DistributedLU(xt4("SN"), 2, block=2).solve(a, a @ x_true)
    assert np.allclose(x, x_true, atol=1e-10)


def test_lu_block_cyclic_uneven_rank_block_ratio():
    a, x_true, b = _system(40, seed=2)
    # 5 blocks over 3 ranks: uneven ownership.
    x, _ = DistributedLU(xt4("SN"), 3, block=8).solve(a, b)
    assert np.allclose(x, x_true, atol=1e-9)


def test_lu_validation():
    with pytest.raises(ValueError):
        DistributedLU(xt4("SN"), 0)
    with pytest.raises(ValueError):
        DistributedLU(xt4("SN"), 2, block=0)
    solver = DistributedLU(xt4("SN"), 2, block=8)
    with pytest.raises(ValueError):
        solver.solve(np.zeros((10, 10)), np.zeros(10))  # 10 % 8 != 0
    with pytest.raises(ValueError):
        solver.solve(np.zeros((8, 4)), np.zeros(8))


def test_lu_singular_detected():
    solver = DistributedLU(xt4("SN"), 2, block=4)
    with pytest.raises(np.linalg.LinAlgError):
        solver.solve(np.zeros((8, 8)), np.zeros(8))


# -------------------------------------------------------------------- FFT
def test_fft_matches_numpy():
    rng = np.random.default_rng(3)
    sig = rng.standard_normal(256) + 1j * rng.standard_normal(256)
    spectrum, job = DistributedFFT(xt4("VN"), 4, n1=16, n2=16).transform(sig)
    assert np.allclose(spectrum, np.fft.fft(sig), atol=1e-10)
    assert job.elapsed_s > 0


def test_fft_rectangular_factorization():
    rng = np.random.default_rng(4)
    sig = rng.standard_normal(128).astype(complex)
    spectrum, _ = DistributedFFT(xt4("SN"), 2, n1=8, n2=16).transform(sig)
    assert np.allclose(spectrum, np.fft.fft(sig), atol=1e-10)


def test_fft_validation():
    with pytest.raises(ValueError):
        DistributedFFT(xt4("SN"), 2, n1=12, n2=16)  # not a power of two
    with pytest.raises(ValueError):
        DistributedFFT(xt4("SN"), 3, n1=16, n2=16)  # 16 % 3 != 0
    d = DistributedFFT(xt4("SN"), 2, n1=8, n2=8)
    with pytest.raises(ValueError):
        d.transform(np.zeros(100, dtype=complex))


def test_fft_vn_slower_than_sn_at_4_nodes():
    """The alltoall transposes pay the VN NIC-sharing price."""
    rng = np.random.default_rng(5)
    sig = rng.standard_normal(1024).astype(complex)
    _, job_sn = DistributedFFT(xt4("SN"), 8, n1=32, n2=32).transform(sig)
    _, job_vn = DistributedFFT(xt4("VN"), 8, n1=32, n2=32).transform(sig)
    assert job_vn.elapsed_s > job_sn.elapsed_s


# ------------------------------------------------------------- RandomAccess
def test_ra_exact_vs_serial_replay():
    ra = DistributedRandomAccess(xt4("VN"), 4, table_bits=10, updates_per_rank=512)
    table, job = ra.run()
    assert np.array_equal(table, ra.expected_table())
    assert job.elapsed_s > 0


def test_ra_different_rank_counts_same_result():
    """XOR commutativity: table content independent of rank count."""
    kwargs = dict(table_bits=10, updates_per_rank=256)
    t2, _ = DistributedRandomAccess(xt4("SN"), 2, **kwargs).run()
    # Note: streams are per-rank, so compare 2-rank run against its own
    # expected table, and confirm stream coverage is nontrivial.
    ra2 = DistributedRandomAccess(xt4("SN"), 2, **kwargs)
    assert np.array_equal(t2, ra2.expected_table())
    changed = np.count_nonzero(t2 != np.arange(1 << 10, dtype=np.uint64))
    assert changed > 50


def test_ra_validation():
    with pytest.raises(ValueError):
        DistributedRandomAccess(xt4("SN"), 0)
    with pytest.raises(ValueError):
        DistributedRandomAccess(xt4("SN"), 3, table_bits=10)  # 1024 % 3
    with pytest.raises(ValueError):
        DistributedRandomAccess(xt4("SN"), 2, lookahead=0)


# ------------------------------------------------------------------ PTRANS
def test_ptrans_matches_reference():
    rng = np.random.default_rng(6)
    a = rng.standard_normal((32, 32))
    c = rng.standard_normal((32, 32))
    out, job = DistributedPTRANS(xt4("SN"), 4).run(a, c)
    assert np.array_equal(out, a.T + c)
    assert job.elapsed_s > 0


def test_ptrans_validation():
    p = DistributedPTRANS(xt4("SN"), 4)
    with pytest.raises(ValueError):
        p.run(np.zeros((10, 10)), np.zeros((10, 10)))  # 10 % 4
    with pytest.raises(ValueError):
        p.run(np.zeros((8, 4)), np.zeros((8, 8)))


def test_ptrans_xt3_xt4_similar_simulated_time():
    """The Fig. 10 observation at mini scale: same link bandwidth =>
    similar transpose time despite XT4's faster injection."""
    rng = np.random.default_rng(7)
    a = rng.standard_normal((64, 64))
    c = rng.standard_normal((64, 64))
    _, job3 = DistributedPTRANS(xt3(), 8).run(a, c)
    _, job4 = DistributedPTRANS(xt4("SN"), 8).run(a, c)
    assert job4.elapsed_s == pytest.approx(job3.elapsed_s, rel=0.5)
