"""Bidirectional bandwidth experiments vs the paper's §5.2 observations."""

import pytest

from repro.hpcc import BidirectionalBandwidth
from repro.machine import xt3, xt3_dc, xt4


def test_two_pair_bandwidth_exactly_half_per_pair():
    b = BidirectionalBandwidth(xt4())
    one = b.bandwidth_GBs(4_194_304, pairs=1)
    two = b.bandwidth_GBs(4_194_304, pairs=2)
    assert two == pytest.approx(one / 2, rel=0.02)


def test_xt4_at_least_1_8x_xt3_dc_for_large_messages():
    for nbytes in (262_144, 1_048_576, 4_194_304):
        bw4 = BidirectionalBandwidth(xt4()).bandwidth_GBs(nbytes, 1)
        bw3 = BidirectionalBandwidth(xt3_dc()).bandwidth_GBs(nbytes, 1)
        assert bw4 / bw3 >= 1.8


def test_two_pair_latency_over_twice_one_pair():
    for machine in (xt3_dc(), xt4()):
        b = BidirectionalBandwidth(machine)
        assert b.latency_us(pairs=2) > 2 * b.latency_us(pairs=1)


def test_single_core_xt3_rejects_two_pairs():
    with pytest.raises(ValueError):
        BidirectionalBandwidth(xt3()).bandwidth_GBs(1024, pairs=2)


def test_invalid_args():
    b = BidirectionalBandwidth(xt4())
    with pytest.raises(ValueError):
        b.bandwidth_GBs(0, pairs=1)
    with pytest.raises(ValueError):
        b.bandwidth_GBs(1024, pairs=3)


def test_bandwidth_monotone_in_message_size():
    b = BidirectionalBandwidth(xt4())
    sizes, bws = b.sweep(pairs=1, sizes=(64, 4096, 262_144, 4_194_304))
    assert bws == sorted(bws)  # latency amortizes with size


def test_peak_bandwidths_match_injection_model():
    # Bidirectional peak ≈ 2 x unidirectional MPI bandwidth.
    bw = BidirectionalBandwidth(xt4()).bandwidth_GBs(8_388_608, 1)
    assert bw == pytest.approx(2 * 2.1, rel=0.05)
    bw3 = BidirectionalBandwidth(xt3()).bandwidth_GBs(8_388_608, 1)
    assert bw3 == pytest.approx(2 * 1.15, rel=0.05)
