"""HPCC global benchmarks vs the paper's Figures 8-11."""

import pytest

from repro.hpcc import HPLModel, MPIFFTModel, MPIRandomAccessModel, PTRANSModel
from repro.machine import xt3, xt4


# ------------------------------------------------------------------ Figure 8
def test_hpl_xt4_sn_near_clock_proportional_over_xt3():
    p = 1024
    t3 = HPLModel(xt3(), p).tflops()
    t4 = HPLModel(xt4("SN"), p).tflops()
    assert 1.05 < t4 / t3 < 1.2  # ~2.6/2.4 plus memory effects


def test_hpl_vn_per_socket_nearly_doubles():
    sockets = 512
    sn = HPLModel(xt4("SN"), sockets).tflops()
    vn = HPLModel(xt4("VN"), sockets * 2).tflops()
    assert 1.7 < vn / sn < 2.05


def test_hpl_efficiency_near_measured():
    # §6.5: 16.7 TFLOPS on 4096 cores = 78.4% of peak.
    eff = HPLModel(xt4("VN"), 4096, complex_valued=True).efficiency()
    assert 0.70 < eff < 0.85


def test_hpl_scaling_monotone():
    vals = [HPLModel(xt4("SN"), p).tflops() for p in (64, 256, 1024)]
    assert vals[0] < vals[1] < vals[2]


def test_hpl_validation():
    with pytest.raises(ValueError):
        HPLModel(xt4("SN"), 0)
    with pytest.raises(ValueError):
        HPLModel(xt4("SN"), 4, fill_fraction=0.0)


# ------------------------------------------------------------------ Figure 9
def test_mpifft_xt4_sn_beats_xt3_per_socket():
    p = 1024
    assert MPIFFTModel(xt4("SN"), p).gflops() > MPIFFTModel(xt3(), p).gflops()


def test_mpifft_vn_per_core_much_worse():
    p = 1024
    sn = MPIFFTModel(xt4("SN"), p).gflops()
    vn = MPIFFTModel(xt4("VN"), p).gflops()
    assert vn < 0.85 * sn  # the NIC bottleneck


def test_mpifft_vn_per_socket_still_ahead_of_xt3():
    sockets = 512
    vn = MPIFFTModel(xt4("VN"), sockets * 2).gflops()
    xt3_rate = MPIFFTModel(xt3(), sockets).gflops()
    assert vn > xt3_rate


# ----------------------------------------------------------------- Figure 10
def test_ptrans_per_socket_unchanged_xt3_to_xt4():
    p = 1024
    g3 = PTRANSModel(xt3(), p).gbs()
    g4 = PTRANSModel(xt4("SN"), p).gbs()
    assert g4 == pytest.approx(g3, rel=0.2)  # link bandwidth did not change


def test_ptrans_vn_equal_per_socket():
    sockets = 1024
    sn = PTRANSModel(xt4("SN"), sockets).gbs()
    vn = PTRANSModel(xt4("VN"), sockets * 2).gbs()
    assert vn == pytest.approx(sn, rel=0.25)


def test_ptrans_magnitude_matches_figure():
    # Fig. 10: ~100-180 GB/s near 1000 sockets.
    g = PTRANSModel(xt4("SN"), 1024).gbs()
    assert 80 < g < 300


# ----------------------------------------------------------------- Figure 11
def test_mpira_sn_slightly_above_xt3():
    p = 1024
    g3 = MPIRandomAccessModel(xt3(), p).gups()
    g4 = MPIRandomAccessModel(xt4("SN"), p).gups()
    assert 1.05 < g4 / g3 < 1.6


def test_mpira_vn_worse_than_xt3_per_core_and_per_socket():
    cores = 1024
    g3 = MPIRandomAccessModel(xt3(), cores).gups()
    vn_same_cores = MPIRandomAccessModel(xt4("VN"), cores).gups()
    vn_same_sockets = MPIRandomAccessModel(xt4("VN"), cores * 2).gups()
    assert vn_same_cores < g3  # per core
    assert vn_same_sockets < g3 * 1.0  # per socket too (Fig. 11)


def test_mpira_magnitude_matches_figure():
    # Fig. 11: ~0.15-0.30 GUPS near 1000 tasks.
    assert 0.1 < MPIRandomAccessModel(xt4("SN"), 1024).gups() < 0.4


def test_mpira_single_task_is_local_rate():
    from repro.hpcc import RandomAccessBench

    solo = MPIRandomAccessModel(xt4("SN"), 1).gups()
    assert solo == pytest.approx(RandomAccessBench(xt4("SN")).sp_gups())
