"""HPCC network benchmarks vs the paper's Figures 2-3, plus DES validation."""

import pytest

from repro.hpcc import PingPong, RingBenchmark
from repro.machine import xt3, xt4


def test_pingpong_latency_values():
    assert PingPong(xt3()).latency_us("min") == pytest.approx(6.05, rel=0.02)
    assert PingPong(xt4("SN")).latency_us("min") == pytest.approx(4.55, rel=0.02)


def test_pingpong_vn_worst_case():
    worst = PingPong(xt4("VN")).latency_us("max")
    assert 15 < worst < 21


def test_pingpong_bandwidth_values():
    assert PingPong(xt3()).bandwidth_GBs() == pytest.approx(1.15, rel=0.02)
    assert PingPong(xt4("SN")).bandwidth_GBs() == pytest.approx(2.1, rel=0.02)


def test_des_latency_matches_model():
    pp = PingPong(xt4("SN"))
    des = pp.run_des(nbytes=8, iters=4)
    model = pp.latency_us("min")
    assert des == pytest.approx(model, rel=0.05)


def test_des_bandwidth_matches_model():
    pp = PingPong(xt4("SN"))
    des_bw = pp.run_des_bandwidth_GBs(nbytes=8_000_000, iters=3)
    assert des_bw == pytest.approx(pp.bandwidth_GBs(), rel=0.05)


def test_des_xt3_slower_than_xt4():
    lat3 = PingPong(xt3()).run_des(iters=3)
    lat4 = PingPong(xt4("SN")).run_des(iters=3)
    assert lat3 > lat4


def test_ring_orderings():
    for machine in (xt3(), xt4("SN"), xt4("VN")):
        ring = RingBenchmark(machine)
        pp = PingPong(machine)
        # Random ring is slower (latency) and thinner (bandwidth) than natural.
        assert ring.random_latency_us() >= ring.natural_latency_us()
        assert ring.random_bandwidth_GBs() <= ring.natural_bandwidth_GBs()
        assert ring.natural_bandwidth_GBs() < pp.bandwidth_GBs()


def test_ring_des_runs_and_orders():
    ring = RingBenchmark(xt4("SN"))
    nat = ring.run_des_natural(ntasks=6, nbytes=1024)
    rand = ring.run_des_random(ntasks=6, nbytes=1024, seed=1)
    assert nat > 0 and rand > 0
    # Random permutation spans more hops: should not be faster than natural.
    assert rand >= nat * 0.9


def test_ring_validation():
    with pytest.raises(ValueError):
        RingBenchmark(xt4("SN")).run_des_natural(ntasks=1)
    with pytest.raises(ValueError):
        PingPong(xt4("SN")).run_des(iters=0)
