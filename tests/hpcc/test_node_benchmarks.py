"""HPCC node-local benchmarks vs the paper's Figures 4-7."""

import pytest

from repro.hpcc import DGEMMBench, FFTBench, RandomAccessBench, StreamBench
from repro.machine import xt3, xt4


# ------------------------------------------------------------------ Figure 5
def test_dgemm_values():
    assert DGEMMBench(xt3()).sp_gflops() == pytest.approx(4.32, rel=0.03)
    assert DGEMMBench(xt4("SN")).sp_gflops() == pytest.approx(4.71, rel=0.03)


def test_dgemm_ep_close_to_sp():
    b = DGEMMBench(xt4("VN"))
    assert b.ep_gflops() / b.sp_gflops() > 0.97


def test_dgemm_clock_proportional_gain():
    # "a small clock frequency driven improvement" — ratio near 2.6/2.4.
    r = DGEMMBench(xt4("SN")).sp_gflops() / DGEMMBench(xt3()).sp_gflops()
    assert 1.05 < r < 1.15


def test_dgemm_numeric_verifies():
    ok, t = DGEMMBench(xt4("SN")).run_numeric(n=96)
    assert ok
    assert t > 0


# ------------------------------------------------------------------ Figure 4
def test_fft_xt4_improvement():
    r = FFTBench(xt4("SN")).sp_gflops() / FFTBench(xt3()).sp_gflops()
    assert 1.1 < r < 1.3  # paper: ~25%, memory driven


def test_fft_ep_degradation_modest():
    b = FFTBench(xt4("VN"))
    ratio = b.ep_gflops() / b.sp_gflops()
    assert 0.75 < ratio < 1.0  # "little degradation" vs RA's 50%


def test_fft_numeric_verifies():
    ok, t = FFTBench(xt4("SN")).run_numeric(n=1 << 10)
    assert ok
    assert t > 0


# ------------------------------------------------------------------ Figure 7
def test_stream_values():
    assert StreamBench(xt3()).sp_GBs() == pytest.approx(4.0, rel=0.05)
    assert StreamBench(xt4("SN")).sp_GBs() == pytest.approx(6.3, rel=0.05)


def test_stream_second_core_adds_little_per_socket():
    b = StreamBench(xt4("VN"))
    per_socket_ep = 2 * b.ep_GBs()
    assert per_socket_ep / b.sp_GBs() < 1.05


def test_stream_numeric_verifies():
    ok, t = StreamBench(xt4("SN")).run_numeric(n=10_000)
    assert ok and t > 0


# ------------------------------------------------------------------ Figure 6
def test_ra_ep_is_half_sp():
    b = RandomAccessBench(xt4("VN"))
    assert b.ep_gups() == pytest.approx(b.sp_gups() / 2)


def test_ra_xt4_sp_improves_over_xt3():
    assert RandomAccessBench(xt4("SN")).sp_gups() > RandomAccessBench(xt3()).sp_gups()


def test_ra_xt4_ep_below_xt3_per_core():
    # "falling behind the per-core XT3 result" in EP mode.
    assert RandomAccessBench(xt4("VN")).ep_gups() < RandomAccessBench(xt3()).sp_gups()


def test_ra_numeric_error_within_tolerance():
    err, t = RandomAccessBench(xt4("SN")).run_numeric()
    assert err < 0.01
    assert t > 0


def test_multicore_locality_trend():
    """The paper's §7 inter-comparison: temporal locality determines the
    benefit of the second core. Ordering of EP/SP ratios: DGEMM ≥ FFT > RA."""
    m = xt4("VN")
    dgemm = DGEMMBench(m).ep_gflops() / DGEMMBench(m).sp_gflops()
    fft = FFTBench(m).ep_gflops() / FFTBench(m).sp_gflops()
    ra = RandomAccessBench(m).ep_gups() / RandomAccessBench(m).sp_gups()
    stream = StreamBench(m).ep_GBs() / StreamBench(m).sp_GBs()
    assert dgemm >= fft > ra
    assert stream == pytest.approx(ra, rel=0.1)  # both bandwidth-bound at 1/2
