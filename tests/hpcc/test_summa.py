"""Tests for the SUMMA distributed GEMM (2D grid + subcommunicators)."""

import numpy as np
import pytest

from repro.hpcc.summa import SUMMA
from repro.machine import xt4


def random_product(m, k, n, seed=0):
    rng = np.random.default_rng(seed)
    return rng.standard_normal((m, k)), rng.standard_normal((k, n))


def test_summa_matches_numpy_square_grid():
    a, b = random_product(16, 32, 24)
    c, job = SUMMA(xt4("VN"), pr=2, pc=2, panel=8).multiply(a, b)
    assert np.allclose(c, a @ b)
    assert job.elapsed_s > 0


def test_summa_rectangular_grid():
    a, b = random_product(6, 48, 9, seed=1)
    c, _ = SUMMA(xt4("SN"), pr=2, pc=3, panel=8).multiply(a, b)
    assert np.allclose(c, a @ b)


def test_summa_tall_grid():
    a, b = random_product(12, 16, 8, seed=2)
    c, _ = SUMMA(xt4("SN"), pr=4, pc=1, panel=4).multiply(a, b)
    assert np.allclose(c, a @ b)


def test_summa_single_rank():
    a, b = random_product(8, 8, 8, seed=3)
    c, _ = SUMMA(xt4("SN"), pr=1, pc=1, panel=4).multiply(a, b)
    assert np.allclose(c, a @ b)


def test_summa_validation():
    with pytest.raises(ValueError):
        SUMMA(xt4("SN"), pr=0, pc=2)
    with pytest.raises(ValueError):
        SUMMA(xt4("SN"), pr=2, pc=2, panel=0)
    s = SUMMA(xt4("SN"), pr=2, pc=2, panel=8)
    a, b = random_product(15, 32, 24)  # 15 % 2 != 0
    with pytest.raises(ValueError):
        s.multiply(a, b)
    with pytest.raises(ValueError):
        s.multiply(np.zeros((4, 6)), np.zeros((8, 4)))


def test_summa_vn_slower_than_sn_at_scale():
    """The row/column broadcasts pay the VN price once the grid spans
    several nodes."""
    a, b = random_product(32, 64, 32, seed=4)
    _, job_sn = SUMMA(xt4("SN"), pr=4, pc=4, panel=8).multiply(a, b)
    _, job_vn = SUMMA(xt4("VN"), pr=4, pc=4, panel=8).multiply(a, b)
    assert job_vn.elapsed_s > job_sn.elapsed_s


def test_summa_panel_size_does_not_change_result():
    a, b = random_product(8, 32, 8, seed=5)
    c1, _ = SUMMA(xt4("SN"), pr=2, pc=2, panel=4).multiply(a, b)
    c2, _ = SUMMA(xt4("SN"), pr=2, pc=2, panel=16).multiply(a, b)
    assert np.allclose(c1, c2)
