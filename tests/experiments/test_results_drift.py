"""Regenerated artifacts must match the checked-in ``results/`` bytes.

``repro all --out results/`` is the paper artifact's round-trip: both
the CSV and the rendered text report of every experiment are committed,
and regeneration from the current tree must reproduce them exactly. A
drift here means a model change silently rewrote a published figure —
either regenerate ``results/`` on purpose or fix the regression.

A sample of artifacts spanning tables, micro-benchmarks, applications
and extensions keeps the test fast; the full set is exercised by the CI
runner-smoke job.
"""

import pathlib

import pytest

from repro.core import get_experiment
from repro.core.report import render_csv, render_result

RESULTS = pathlib.Path(__file__).resolve().parents[2] / "results"

SAMPLE = [
    "table1",       # spec table (rows)
    "fig02",        # network micro-benchmark
    "fig05",        # node-local kernel
    "fig08",        # global HPCC
    "fig17",        # application (POP)
    "fig22",        # application weak scaling (S3D)
    "ext_balance",  # extension table
]


@pytest.mark.parametrize("exp_id", SAMPLE)
def test_regenerated_artifact_matches_checked_in(exp_id):
    result = get_experiment(exp_id)()
    csv_path = RESULTS / f"{exp_id}.csv"
    txt_path = RESULTS / f"{exp_id}.txt"
    assert csv_path.is_file() and txt_path.is_file()
    assert render_csv(result) == csv_path.read_text(), (
        f"{exp_id}.csv drifted from results/"
    )
    assert render_result(result) == txt_path.read_text(), (
        f"{exp_id}.txt drifted from results/"
    )


def test_checked_in_results_come_in_csv_txt_pairs():
    csvs = {p.stem for p in RESULTS.glob("*.csv")}
    txts = {p.stem for p in RESULTS.glob("*.txt")}
    assert csvs == txts
