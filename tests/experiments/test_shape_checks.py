"""End-to-end reproduction gate: every paper artifact regenerates and
passes its qualitative shape checks.

This is the repository's headline test: one parametrized case per table
and figure in the paper's evaluation.
"""

import importlib

import pytest

from repro.core import all_experiments, get_experiment


@pytest.mark.parametrize("exp_id", sorted(all_experiments()))
def test_experiment_reproduces_paper_shape(exp_id):
    driver = get_experiment(exp_id)
    result = driver()
    assert result.exp_id == exp_id
    assert result.series or result.rows
    module = importlib.import_module(driver.__module__)
    check = module.shape_checks(result)
    assert check.checks, f"{exp_id} defines no shape checks"
    check.raise_if_failed()


@pytest.mark.parametrize("exp_id", sorted(all_experiments()))
def test_experiment_renders(exp_id):
    from repro.core.report import render_csv, render_result

    result = get_experiment(exp_id)()
    text = render_result(result)
    assert result.title in text
    csv = render_csv(result)
    assert len(csv.splitlines()) > 1


def test_experiments_are_deterministic():
    a = get_experiment("fig12_13")()
    b = get_experiment("fig12_13")()
    for sa, sb in zip(a.series, b.series):
        assert sa.label == sb.label
        assert sa.y == sb.y
