"""Permutation-invariance: drivers certify under tie-break shaking.

Each driver is executed once under the identity tie-break order and K=4
times under seeded permutations of same-time event ordering; result rows,
obs counter totals, and the DES companion report must be byte-identical.
The sample deliberately includes fig12_13 (whose transfer arbitration
once depended on queue order — fixed by keyed transfer processes in
``Comm.isend``) and the DES-companion-heavy paper figures.
"""

import pytest

from repro.simrace.certify import certify_driver

# A cross-section of the registry: analytic drivers, DES companions,
# the full-app walls (fig17 POP, fig22 S3D), and both past offenders
# (fig12_13 transfer arbitration, ext_resilience memoized sweep).
DRIVERS = [
    "ext_balance",
    "ext_multicore",
    "fig02",
    "fig08",
    "fig12_13",
    "fig14",
    "fig17",
    "fig19",
    "fig22",
    "table1",
]


@pytest.mark.parametrize("exp_id", DRIVERS)
def test_driver_is_schedule_invariant(exp_id):
    cert = certify_driver(exp_id, k=4, cache=None)
    assert cert.schedule_invariant, (
        f"{exp_id} diverges under tie-break permutation: {cert.divergence}"
    )
    assert len(cert.seeds) == 4
