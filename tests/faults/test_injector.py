"""FaultInjector + fault-aware SimNetwork: retransmit, detour, stalls."""
# Tests feed literal fault times/durations on purpose: the values ARE
# the test vectors.
# simlint: ignore-file[SL303]

import pytest

from repro.faults import FaultEvent, FaultInjector, FaultPlan
from repro.machine import xt4
from repro.network import NetworkModel, SimNetwork
from repro.network.simnet import NetworkUnreachableError
from repro.simengine import Simulator

#: The +x link out of node 0: the only link on the 0 -> 1 dimension-order route.
LINK_0_PX = ((0, 0, 0), 0, 1)


def _net(**fault_kw):
    sim = Simulator()
    machine = xt4("SN")
    net = SimNetwork(sim, machine)
    if fault_kw:
        net.enable_faults(**fault_kw)
    model = NetworkModel(machine)
    return sim, net, model


def _send(sim, net, model, src, dst, nbytes=100_000, out=None):
    def mover():
        yield from net.transfer(src, dst, nbytes, model.base_latency_s(1))
        if out is not None:
            out.append(sim.now)

    sim.spawn(mover(), name=f"xfer{src}->{dst}")


# -- fault state bookkeeping --------------------------------------------------

def test_faults_are_off_by_default_and_enable_is_idempotent():
    sim, net, _ = _net()
    assert net.faults is None
    st = net.enable_faults(max_retries=3)
    assert net.enable_faults(max_retries=99) is st  # kwargs of 2nd call ignored
    assert st.max_retries == 3


def test_fault_state_validates_knobs():
    with pytest.raises(ValueError, match="retry_timeout_s"):
        _net(retry_timeout_s=0.0)
    with pytest.raises(ValueError, match="max_retries"):
        _net(max_retries=0)


def test_fail_and_restore_link_roundtrip():
    _, net, _ = _net(detour=False)
    net.fail_link(LINK_0_PX)
    assert LINK_0_PX in net.faults.failed_links
    net.restore_link(LINK_0_PX)
    assert LINK_0_PX not in net.faults.failed_links


# -- retransmission / detour --------------------------------------------------

def test_transfer_detours_around_a_failed_link():
    sim, net, model = _net(detour=True)
    net.fail_link(LINK_0_PX)
    done = []
    _send(sim, net, model, 0, 1, out=done)
    sim.run()
    assert done, "transfer must complete via the long way around the ring"
    assert net.faults.reroutes == 1
    assert net.faults.retransmits == 0
    # The failed link was never used; the detour's first hop (-x) was.
    assert net.link_bytes.get(LINK_0_PX) is None
    assert net.link_bytes.get(((0, 0, 0), 0, -1), 0.0) > 0.0


def test_transfer_retransmits_until_the_link_is_restored():
    sim, net, model = _net(detour=False, retry_timeout_s=50e-6)
    net.fail_link(LINK_0_PX)
    # Restore well after the first attempt, so >= 1 retransmit happens.
    sim.schedule(200e-6, lambda: net.restore_link(LINK_0_PX))
    done = []
    _send(sim, net, model, 0, 1, out=done)
    sim.run()
    assert done and done[0] > 200e-6
    assert net.faults.retransmits >= 1
    assert net.faults.reroutes == 0


def test_transfer_unreachable_after_retries_exhausted():
    sim, net, model = _net(detour=False, max_retries=3)
    net.fail_link(LINK_0_PX)  # permanently
    _send(sim, net, model, 0, 1)
    with pytest.raises(NetworkUnreachableError, match="0->1"):
        sim.run()
    assert net.faults.retransmits == 3


def test_nic_stall_delays_transfers_touching_the_node():
    sim, net, model = _net()
    net.stall_nic(0, 1e-3)
    done = []
    _send(sim, net, model, 0, 1, out=done)
    sim.run()
    assert done[0] > 1e-3  # held until the stall window passed, then sent
    assert net.faults.nic_stall_waits == 1


def test_nic_stall_extends_not_shrinks():
    _, net, _ = _net()
    net.stall_nic(4, 2e-3)
    net.stall_nic(4, 1e-3)  # shorter stall must not cut the first short
    assert net.faults.nic_stalled_until[4] == 2e-3


# -- injector dispatch --------------------------------------------------------

def test_injector_fires_plan_events_and_counts():
    sim, net, model = _net()
    plan = FaultPlan([
        FaultEvent(t_s=1e-4, kind="nic_stall", node=2, duration_s=5e-4),
        FaultEvent(t_s=2e-4, kind="mem_throttle", node=3, duration_s=1e-3,
                   factor=2.0),
        FaultEvent(t_s=3e-4, kind="os_noise", node=3, duration_s=1e-4,
                   factor=1.5),
    ])
    inj = FaultInjector(sim, net, plan)
    inj.arm()
    sim.run()
    assert inj.injected == 3
    assert net.faults.nic_stalled_until[2] == pytest.approx(6e-4)
    st = inj.state(3)
    assert st.memory_dilation(5e-4) == pytest.approx(2.0)
    assert st.compute_dilation(3.5e-4) == pytest.approx(1.5)
    assert st.compute_dilation(5e-4) == 1.0  # noise window closed


def test_injector_link_down_with_duration_schedules_restore():
    sim, net, model = _net()
    plan = FaultPlan([
        FaultEvent(t_s=1e-4, kind="link_down", link=LINK_0_PX,
                   duration_s=2e-4),
    ])
    FaultInjector(sim, net, plan).arm()
    sim.run()
    assert sim.now == pytest.approx(3e-4)  # injection + restoration fired
    assert LINK_0_PX not in net.faults.failed_links


def test_standalone_node_crash_fails_all_outgoing_links():
    sim, net, _ = _net()
    plan = FaultPlan([FaultEvent(t_s=1e-4, kind="node_crash", node=0)])
    inj = FaultInjector(sim, net, plan)  # no on_node_crash hook
    inj.arm()
    sim.run()
    assert inj.state(0).crashed
    coord = net.torus.coord(0)
    for dim in range(3):
        assert (coord, dim, 1) in net.faults.failed_links
    # A second crash of the same node is a no-op (a node dies once).
    inj._fire(FaultEvent(t_s=1e-4, kind="node_crash", node=0))
    assert inj.injected == 2


def test_cancel_pending_stops_future_injections():
    sim, net, _ = _net()
    plan = FaultPlan([FaultEvent(t_s=10.0, kind="node_crash", node=0)])
    inj = FaultInjector(sim, net, plan)
    inj.arm()
    sim.schedule(1.0, inj.cancel_pending)
    sim.run()
    assert sim.now == 1.0  # the armed crash at t=10 never fired
    assert inj.injected == 0


def test_arm_skips_events_already_in_the_past():
    sim, net, _ = _net()
    sim.schedule(5.0, lambda: None)
    sim.run()
    assert sim.now == 5.0
    plan = FaultPlan([
        FaultEvent(t_s=1.0, kind="node_crash", node=0),  # already past
        FaultEvent(t_s=9.0, kind="node_crash", node=1),
    ])
    inj = FaultInjector(sim, net, plan)
    inj.arm()
    sim.run()
    assert inj.injected == 1
    assert not inj.state(0).crashed
    assert inj.state(1).crashed
