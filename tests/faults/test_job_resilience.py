"""MPIJob under faults: bit-identity off, checkpoint/restart recovery on.

The determinism regressions here are the subsystem's core contract:
without a plan the job must take exactly the pre-fault code paths, and a
faulted run with a fixed plan must replay bit-identically.
"""

import pytest

from repro.faults import FaultEvent, FaultPlan, FaultPolicy, installed_plan
from repro.machine import xt4
from repro.mpi.job import JobFailedError, MPIJob
from repro.obs import Tracer

NTASKS = 2
ITERS = 20


def _main(comm):
    peer = comm.rank ^ 1
    for i in range(ITERS):
        yield from comm.compute(flops=2.0e7, profile="fft")
        yield from comm.sendrecv(float(i), dest=peer, source=peer, tag=i)
    yield from comm.allreduce(1.0)
    return comm.wtime()


def _run(plan=None, policy=None, sanitize=False, tracer=None):
    job = MPIJob(
        xt4("SN"), NTASKS, sanitize=sanitize, tracer=tracer,
        faults=plan, fault_policy=policy,
    )
    return job.run(_main)


@pytest.fixture(scope="module")
def baseline():
    return _run()


def _crash_plan(t_s=None, baseline_elapsed=1.0, n=1):
    t0 = baseline_elapsed * 0.4 if t_s is None else t_s
    return FaultPlan([
        FaultEvent(t_s=t0 * (1.0 + 0.1 * k), kind="node_crash", node=0)
        for k in range(n)
    ])


def _policy(baseline_elapsed, **kw):
    return FaultPolicy(
        checkpoint_interval_s=baseline_elapsed / 8,
        checkpoint_cost_s=baseline_elapsed / 100,
        restart_cost_s=baseline_elapsed / 50,
        **kw,
    )


# -- bit-identity when faults are off -----------------------------------------

def test_no_plan_and_empty_plan_are_bit_identical(baseline):
    empty = _run(plan=FaultPlan([]))
    assert empty.elapsed_s == baseline.elapsed_s  # exact, not approx
    assert empty.rank_times == baseline.rank_times
    assert empty.faults_injected == 0
    assert empty.restarts == 0 and empty.checkpoints == 0


def test_empty_plan_shields_against_an_installed_plan(baseline):
    crash = _crash_plan(baseline_elapsed=baseline.elapsed_s)
    with installed_plan(crash):
        shielded = _run(plan=FaultPlan([]), policy=None)
    assert shielded.elapsed_s == baseline.elapsed_s
    assert shielded.faults_injected == 0


def test_installed_plan_reaches_jobs_built_without_arguments(baseline):
    crash = _crash_plan(baseline_elapsed=baseline.elapsed_s)
    policy = _policy(baseline.elapsed_s)
    with installed_plan(crash):
        result = _run(policy=policy)  # plan picked up from the installation
    assert result.faults_injected == 1
    assert result.restarts == 1


# -- deterministic replay of faulted runs -------------------------------------

def test_fixed_plan_faulted_runs_are_bit_identical(baseline):
    plan = FaultPlan.sample(
        horizon_s=4 * baseline.elapsed_s,
        num_nodes=NTASKS,
        node_mtbf_s=baseline.elapsed_s * NTASKS,
        seed=3,
    )
    policy = _policy(baseline.elapsed_s, max_restarts=1000)
    a = _run(plan=plan, policy=policy)
    b = _run(plan=plan, policy=policy)
    assert a.elapsed_s == b.elapsed_s  # exact
    assert a.rank_times == b.rank_times
    assert (a.restarts, a.checkpoints, a.faults_injected) == (
        b.restarts, b.checkpoints, b.faults_injected
    )


# -- checkpoint/restart recovery ----------------------------------------------

def test_checkpoint_only_overhead_is_count_times_cost(baseline):
    policy = _policy(baseline.elapsed_s)
    result = _run(plan=FaultPlan([]), policy=policy)
    assert result.checkpoints >= 1
    expected = baseline.elapsed_s + result.checkpoints * policy.checkpoint_cost_s
    assert result.elapsed_s == pytest.approx(expected, rel=1e-12)


def test_crash_with_policy_recovers_and_costs_time(baseline):
    plan = _crash_plan(baseline_elapsed=baseline.elapsed_s)
    policy = _policy(baseline.elapsed_s)
    result = _run(plan=plan, policy=policy)
    assert result.restarts == 1
    assert result.faults_injected == 1
    assert result.checkpoints >= 1
    # Lost work + restart outage + checkpoint overhead all cost time.
    assert result.elapsed_s > baseline.elapsed_s
    # ...but recovery is bounded: lost work <= one checkpoint interval +
    # restart + total checkpoint cost.
    bound = (
        baseline.elapsed_s
        + policy.checkpoint_interval_s
        + policy.restart_cost_s
        + (result.checkpoints + 1) * policy.checkpoint_cost_s
    )
    assert result.elapsed_s <= bound


def test_crash_without_policy_aborts_the_job(baseline):
    plan = _crash_plan(baseline_elapsed=baseline.elapsed_s)
    with pytest.raises(JobFailedError, match="no recovery policy"):
        _run(plan=plan)


def test_max_restarts_exhaustion_aborts(baseline):
    plan = _crash_plan(baseline_elapsed=baseline.elapsed_s, n=3)
    policy = _policy(baseline.elapsed_s, max_restarts=1)
    with pytest.raises(JobFailedError, match="max_restarts=1"):
        _run(plan=plan, policy=policy)


def test_degrade_factor_slows_the_survivors(baseline):
    plan = _crash_plan(baseline_elapsed=baseline.elapsed_s)
    fast = _run(plan=plan, policy=_policy(baseline.elapsed_s))
    slow = _run(plan=plan, policy=_policy(baseline.elapsed_s,
                                          degrade_factor=1.5))
    assert slow.elapsed_s > fast.elapsed_s


def test_faulted_run_is_sanitizer_clean(baseline):
    plan = _crash_plan(baseline_elapsed=baseline.elapsed_s)
    policy = _policy(baseline.elapsed_s)
    result = _run(plan=plan, policy=policy, sanitize=True)
    assert result.restarts == 1


def test_resilience_tracer_counters(baseline):
    plan = _crash_plan(baseline_elapsed=baseline.elapsed_s)
    policy = _policy(baseline.elapsed_s)
    tracer = Tracer()
    result = _run(plan=plan, policy=policy, tracer=tracer)
    assert tracer.counters["faults.injected"].total == result.faults_injected
    assert tracer.counters["job.restarts"].total == result.restarts
    assert tracer.counters["job.checkpoints"].total == result.checkpoints
    names = {s.name for s in tracer.spans}
    assert {"job.checkpoint", "job.restart", "fault.node_crash"} <= names


def test_mem_throttle_and_noise_dilate_elapsed_time(baseline):
    plan = FaultPlan([
        FaultEvent(t_s=0.0, kind="mem_throttle", node=0,
                   duration_s=baseline.elapsed_s, factor=4.0),
        FaultEvent(t_s=0.0, kind="os_noise", node=0,
                   duration_s=baseline.elapsed_s, factor=2.0),
    ])
    result = _run(plan=plan)
    assert result.faults_injected == 2
    assert result.elapsed_s > baseline.elapsed_s
