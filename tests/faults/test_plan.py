"""FaultPlan: validation, serialization, deterministic MTBF sampling."""
# Tests feed literal seconds into plan/event constructors on purpose:
# the values ARE the test vectors.
# simlint: ignore-file[SL302,SL303]

import pytest

from repro.faults import (
    KINDS,
    FaultEvent,
    FaultPlan,
    current_plan,
    install_plan,
    installed_plan,
    uninstall_plan,
)

LINK = ((0, 1, 0), 0, 1)


# -- FaultEvent validation ----------------------------------------------------

def test_event_rejects_unknown_kind():
    with pytest.raises(ValueError, match="unknown fault kind"):
        FaultEvent(t_s=0.0, kind="gamma_ray", node=0)


def test_event_rejects_negative_time_and_duration():
    with pytest.raises(ValueError, match="negative fault time"):
        FaultEvent(t_s=-1.0, kind="node_crash", node=0)
    with pytest.raises(ValueError, match="negative fault duration"):
        FaultEvent(t_s=0.0, kind="nic_stall", node=0, duration_s=-1.0)


def test_event_requires_the_right_target():
    with pytest.raises(ValueError, match="link_down requires a link"):
        FaultEvent(t_s=0.0, kind="link_down", node=3)
    for kind in ("nic_stall", "mem_throttle", "os_noise", "node_crash"):
        with pytest.raises(ValueError, match=f"{kind} requires a node"):
            FaultEvent(t_s=0.0, kind=kind)


def test_event_slowdown_factor_must_be_a_slowdown():
    with pytest.raises(ValueError, match="factor must be >= 1"):
        FaultEvent(t_s=0.0, kind="mem_throttle", node=0, factor=0.5)
    # A speedup factor on kinds that ignore it is fine.
    FaultEvent(t_s=0.0, kind="node_crash", node=0, factor=0.5)


# -- plan ordering / serialization -------------------------------------------

def test_plan_is_time_sorted_and_sized():
    plan = FaultPlan([
        FaultEvent(t_s=2.0, kind="node_crash", node=1),
        FaultEvent(t_s=0.5, kind="nic_stall", node=0, duration_s=1e-4),
        FaultEvent(t_s=1.0, kind="link_down", link=LINK),
    ])
    assert len(plan) == 3
    assert [e.t_s for e in plan] == [0.5, 1.0, 2.0]


def test_plan_json_roundtrip(tmp_path):
    plan = FaultPlan([
        FaultEvent(t_s=1.0, kind="link_down", link=LINK, duration_s=0.25),
        FaultEvent(t_s=2.0, kind="mem_throttle", node=7, duration_s=1e-3,
                   factor=2.5),
        FaultEvent(t_s=3.0, kind="node_crash", node=4),
    ])
    path = tmp_path / "plan.json"
    plan.save(str(path))
    loaded = FaultPlan.load(str(path))
    assert loaded.events == plan.events
    # Tuples (hashable links) survive the JSON list round-trip.
    assert loaded.events[0].link == LINK


def test_plan_dict_roundtrip_preserves_defaults():
    plan = FaultPlan([FaultEvent(t_s=0.0, kind="node_crash", node=0)])
    d = plan.to_dict()
    assert d["version"] == 1
    assert "duration_s" not in d["events"][0]  # defaults stay out of JSON
    assert FaultPlan.from_dict(d).events == plan.events


# -- sampling -----------------------------------------------------------------

def _sample(**kw):
    base = dict(
        horizon_s=10.0,
        num_nodes=16,
        torus_dims=(4, 2, 2),
        node_mtbf_s=40.0,
        link_mtbf_s=80.0,
        nic_mtbf_s=20.0,
        seed=7,
    )
    base.update(kw)
    return FaultPlan.sample(**base)


def test_sample_is_a_pure_function_of_its_seed():
    assert _sample().events == _sample().events
    assert _sample(seed=8).events != _sample(seed=7).events


def test_sample_respects_horizon_and_targets():
    plan = _sample()
    assert len(plan) > 0
    for ev in plan:
        assert 0.0 <= ev.t_s < 10.0
        assert ev.kind in KINDS
        if ev.kind == "link_down":
            assert ev.link is not None
        else:
            assert 0 <= ev.node < 16


def test_sample_streams_are_independent_per_kind():
    """Enabling an extra fault kind must not perturb the others' draws."""
    without = _sample(nic_mtbf_s=None)
    withal = _sample()
    crashes = lambda p: [e for e in p if e.kind == "node_crash"]
    links = lambda p: [e for e in p if e.kind == "link_down"]
    assert crashes(without) == crashes(withal)
    assert links(without) == links(withal)


def test_sample_validates_inputs():
    with pytest.raises(ValueError, match="horizon_s"):
        FaultPlan.sample(horizon_s=0.0, num_nodes=4, node_mtbf_s=1.0)
    with pytest.raises(ValueError, match="num_nodes"):
        FaultPlan.sample(horizon_s=1.0, num_nodes=0, node_mtbf_s=1.0)
    with pytest.raises(ValueError, match="torus_dims"):
        FaultPlan.sample(horizon_s=1.0, num_nodes=4, link_mtbf_s=1.0)


# -- process-global installation ---------------------------------------------

def test_install_and_uninstall_plan():
    assert current_plan() is None
    plan = FaultPlan([])
    try:
        assert install_plan(plan) is plan
        assert current_plan() is plan
    finally:
        uninstall_plan()
    assert current_plan() is None


def test_installed_plan_context_restores_previous():
    outer = FaultPlan([])
    inner = FaultPlan([FaultEvent(t_s=0.0, kind="node_crash", node=0)])
    with installed_plan(outer):
        with installed_plan(inner):
            assert current_plan() is inner
        assert current_plan() is outer
    assert current_plan() is None
