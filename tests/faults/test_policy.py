"""FaultPolicy validation and Daly's optimal checkpoint interval."""

import math

import pytest

from repro.faults import FaultPolicy, daly_optimal_interval_s


def test_policy_validates_fields():
    with pytest.raises(ValueError, match="checkpoint_interval_s"):
        FaultPolicy(0.0, 1.0, 1.0)
    with pytest.raises(ValueError, match="checkpoint_cost_s"):
        FaultPolicy(1.0, -1.0, 1.0)
    with pytest.raises(ValueError, match="restart_cost_s"):
        FaultPolicy(1.0, 1.0, -1.0)
    with pytest.raises(ValueError, match="max_restarts"):
        FaultPolicy(1.0, 1.0, 1.0, max_restarts=-1)
    with pytest.raises(ValueError, match="degrade_factor"):
        FaultPolicy(1.0, 1.0, 1.0, degrade_factor=0.9)


def test_policy_is_frozen_value_object():
    pol = FaultPolicy(10.0, 0.5, 1.0)
    with pytest.raises(Exception):
        pol.checkpoint_interval_s = 5.0
    assert pol == FaultPolicy(10.0, 0.5, 1.0)


def test_daly_formula():
    # I* = sqrt(2 C M) - C
    assert daly_optimal_interval_s(2.0, 100.0) == pytest.approx(
        math.sqrt(400.0) - 2.0
    )
    # Zero-cost checkpoints -> checkpoint continuously.
    assert daly_optimal_interval_s(0.0, 100.0) == 0.0
    # C << M: interval grows with sqrt(M).
    assert daly_optimal_interval_s(1.0, 1e6) == pytest.approx(
        math.sqrt(2e6) - 1.0
    )


def test_daly_validates_inputs():
    with pytest.raises(ValueError, match="checkpoint_cost_s"):
        daly_optimal_interval_s(-1.0, 10.0)
    with pytest.raises(ValueError, match="mtbf_s"):
        daly_optimal_interval_s(1.0, 0.0)
