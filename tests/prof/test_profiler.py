"""Engine-profiler behaviour: attribution, labels, stacks, installation."""

import pytest

from repro.prof import (
    EngineProfiler,
    current_profiler,
    install_profiler,
    installed_profiler,
    uninstall_profiler,
)
from repro.simengine import Delay, Simulator
from repro.simengine.resource import Resource, Store


def _pingpong_sim(profile):
    sim = Simulator(profile=profile)
    store = Store(sim, name="mbox")

    def producer(sim):
        for i in range(5):
            yield Delay(0.5)
            store.put(i)

    def consumer(sim):
        got = []
        for _ in range(5):
            item = yield store.get()
            got.append(item)
        return got

    sim.spawn(producer(sim), name="rank0")
    cons = sim.spawn(consumer(sim), name="rank1")
    sim.run()
    return sim, cons


def test_attribution_covers_all_run_wall_time():
    sim, _ = _pingpong_sim(True)
    prof = sim.prof
    assert prof.run_wall_ns > 0
    # Mark-chain accounting: phase self times sum exactly to the time
    # between the first and last mark — ≥95% of run_wall_ns (the
    # remainder is the final end_run bookkeeping read).
    assert prof.attributed_ns <= prof.run_wall_ns
    assert prof.attributed_ns >= 0.95 * prof.run_wall_ns
    assert prof.events > 0
    assert sum(prof.kind_counts.values()) == prof.events


def test_phases_and_sites_are_named_and_normalized():
    sim, _ = _pingpong_sim(True)
    prof = sim.prof
    assert "engine.queue" in prof.phase_self_ns
    assert "proc.delay" in prof.phase_self_ns
    assert "store.put" in prof.phase_self_ns
    assert "store.get" in prof.phase_self_ns
    assert "event.wake" in prof.phase_self_ns
    # Owners are digit-normalized: rank0/rank1 collapse to rank*.
    assert "proc.start:rank*" in prof.site_counts
    assert prof.site_counts["proc.start:rank*"] == 2
    assert not any(":rank0" in s or ":rank1" in s for s in prof.site_counts)


def test_scheduling_edges_use_parent_bookkeeping():
    sim, _ = _pingpong_sim(True)
    edges = sim.prof.edge_counts
    # Spawns from outside the run loop have the external parent.
    assert edges.get("<external> -> proc.start:rank*") == 2
    # A delay wakeup scheduled by a previous delay wakeup.
    assert any(
        e.startswith("proc.delay:rank* ->") or
        e.startswith("proc.start:rank* -> proc.delay:rank*")
        for e in edges
    )


def test_stack_paths_collapse_self_recursion():
    sim, _ = _pingpong_sim(True)
    paths = list(sim.prof.stack_self_ns)
    # Repeated delay wakeups of the same site must not grow the path.
    assert not any("proc.delay:rank*;proc.delay:rank*" in p for p in paths)
    assert "engine.queue" in paths


def test_resource_arbitration_phase():
    sim = Simulator(profile=True)
    res = Resource(sim, capacity=1, name="nic")

    def user(sim):
        yield from res.use(0.001)

    for i in range(3):
        sim.spawn(user(sim), name=f"u{i}")
    sim.run()
    prof = sim.prof
    assert prof.phase_self_ns["resource.request"] > 0
    assert prof.phase_self_ns["resource.release"] > 0


def test_probes_outside_run_loop_are_noops():
    prof = EngineProfiler()
    sim = Simulator(profile=prof)
    store = Store(sim, name="pre")
    store.put(1)  # before run(): probe must not build frames
    assert prof._frames == []
    assert prof.phase_self_ns == {}


def test_queue_depth_and_ready_set_metrics():
    sim, _ = _pingpong_sim(True)
    m = sim.prof.metrics
    assert m.histograms["engine.queue.depth"].n > 0
    sim.prof.finalize(None)
    assert m.histograms["engine.ready_set.size"].n > 0


def test_cancel_counting():
    sim = Simulator(profile=True)
    handle = sim.schedule(1.0, lambda: None)
    sim.cancel(handle)
    assert sim.prof.cancels == 1


def test_unlabelled_entries_are_anonymous_callbacks():
    sim = Simulator(profile=True)
    sim._queue.push(0.0, lambda: None)  # raw push: no label site
    sim.run()
    assert sim.prof.site_counts == {"engine.callback:<anonymous>": 1}


def test_schedule_key_and_qualname_labels():
    sim = Simulator(profile=True)

    def tick():
        return None

    sim.schedule(0.0, tick)
    sim.schedule(0.0, tick, key="calib")
    sim.run()
    sites = sim.prof.site_counts
    # Unkeyed: function qualname (digits normalized); keyed: the key.
    assert any("tick" in s for s in sites)
    assert "engine.callback:calib" in sites


def test_install_uninstall_and_context_manager():
    assert current_profiler() is None
    prof = install_profiler(EngineProfiler())
    try:
        assert current_profiler() is prof
        # Simulators constructed now pick it up by default.
        assert Simulator().prof is prof
    finally:
        uninstall_profiler()
    assert current_profiler() is None
    with installed_profiler() as inner:
        assert current_profiler() is inner
        nested = EngineProfiler()
        with installed_profiler(nested):
            assert current_profiler() is nested
        assert current_profiler() is inner
    assert current_profiler() is None


def test_profiled_run_is_simulation_identical():
    sim_off, cons_off = _pingpong_sim(None)
    sim_on, cons_on = _pingpong_sim(True)
    assert sim_off.prof is None and sim_on.prof is not None
    assert sim_on.now == sim_off.now
    assert cons_on.done.value == cons_off.done.value == [0, 1, 2, 3, 4]


def test_profiled_run_loop_raising_event_unwinds_frames():
    sim = Simulator(profile=True)

    def boom():
        raise RuntimeError("boom")

    sim.schedule(1.0, boom)
    with pytest.raises(RuntimeError, match="boom"):
        sim.run()
    prof = sim.prof
    assert prof._frames == []
    assert prof.run_wall_ns > 0
    # The failing event's time is still attributed.
    assert "engine.callback" in prof.phase_self_ns
