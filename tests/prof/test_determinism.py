"""Determinism guarantees of the profiling subsystem.

Three properties, all required by the PR acceptance bar:

1. The deterministic artifacts — ``*.metrics.json`` and the profile's
   ``deterministic`` section — are byte-identical across repeated
   recordings of the same experiment (wall-clock ``*_ns`` fields vary;
   nothing else may).
2. ``repro all --profile DIR`` writes the same deterministic artifacts
   under ``--jobs 4`` as under serial execution.
3. Profiling is observationally free: running a driver under an
   installed profiler leaves its result rows, counters and companion
   report bit-identical to an unprofiled run.
"""

import importlib
import json
import pathlib
import subprocess
import sys

from repro.prof import installed_profiler
from repro.prof.record import record_experiment
from repro.simrace.certify import _clear_module_memoization, _execution_blob

EXP = "fig22"
ALL_EXPS = "fig02,fig22,fig12_13"


def _deterministic_bytes(profile_path):
    """The repeat-stable slice of a profile file, canonically encoded."""
    doc = json.loads(pathlib.Path(profile_path).read_text())
    return json.dumps(doc["deterministic"], sort_keys=True).encode()


def _record_twice(tmp_path):
    outcomes = []
    for i in (1, 2):
        out = record_experiment(EXP, str(tmp_path / f"run{i}"))
        # Defeat the drivers' module-level @lru_cache memoization, which
        # would otherwise make the second recording an empty no-op sim.
        from repro.core import get_experiment

        driver = get_experiment(EXP)
        _clear_module_memoization(importlib.import_module(driver.__module__))
        outcomes.append(out)
    return outcomes


def test_repeat_recordings_are_deterministic(tmp_path):
    run1, run2 = _record_twice(tmp_path)
    assert run1.events == run2.events > 0
    profile1, _, metrics1 = run1.paths
    profile2, _, metrics2 = run2.paths
    # Sim-time metrics: byte-identical files.
    assert pathlib.Path(metrics1).read_bytes() == \
        pathlib.Path(metrics2).read_bytes()
    # Profile: the deterministic section matches byte for byte...
    assert _deterministic_bytes(profile1) == _deterministic_bytes(profile2)
    # ...while the wall-clock section genuinely measured something.
    doc = json.loads(pathlib.Path(profile1).read_text())
    assert doc["engine"]["run_wall_ns"] > 0


def _repro_all(out_dir, jobs):
    proc = subprocess.run(
        [
            sys.executable, "-m", "repro", "all",
            "--only", ALL_EXPS,
            "--profile", str(out_dir),
            "--no-cache",
            "--jobs", str(jobs),
            "--out", str(out_dir / "results"),
        ],
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0, proc.stderr
    return proc


def test_repro_all_parallel_profiles_match_serial(tmp_path):
    serial, parallel = tmp_path / "serial", tmp_path / "parallel"
    _repro_all(serial, jobs=1)
    _repro_all(parallel, jobs=4)
    exp_ids = sorted(ALL_EXPS.split(","))
    assert sorted(p.stem for p in serial.glob("*.folded")) == exp_ids
    for exp_id in exp_ids:
        assert (serial / f"{exp_id}.metrics.json").read_bytes() == \
            (parallel / f"{exp_id}.metrics.json").read_bytes()
        assert _deterministic_bytes(serial / f"{exp_id}.profile.json") == \
            _deterministic_bytes(parallel / f"{exp_id}.profile.json")


def test_profiling_leaves_results_bit_identical():
    baseline = _execution_blob("fig12_13")
    with installed_profiler() as prof:
        profiled = _execution_blob("fig12_13")
    assert prof.events > 0  # the profiler really saw the run
    assert json.dumps(baseline, sort_keys=True) == \
        json.dumps(profiled, sort_keys=True)
