"""Unit tests for the sim-time metrics registry."""

import json

import pytest

from repro.obs import Tracer
from repro.prof.metrics import POW2_BUCKETS, Histogram, MetricsRegistry


def test_histogram_bucketing_is_inclusive_upper_edge():
    h = Histogram("h", [1.0, 2.0, 4.0])
    for v in (0.0, 1.0, 1.5, 2.0, 3.0, 4.0, 5.0, 100.0):
        h.observe(v)
    # (..1], (1..2], (2..4], overflow
    assert h.counts == [2, 2, 2, 2]
    assert h.n == 8
    assert h.sum == pytest.approx(116.5)


def test_histogram_rejects_unsorted_or_empty_edges():
    with pytest.raises(ValueError):
        Histogram("bad", [])
    with pytest.raises(ValueError):
        Histogram("bad", [2.0, 1.0])


def test_registry_create_or_get_and_edge_conflict():
    reg = MetricsRegistry()
    h1 = reg.histogram("depth")
    h2 = reg.histogram("depth")
    assert h1 is h2 and h1.edges == POW2_BUCKETS
    with pytest.raises(ValueError):
        reg.histogram("depth", [1.0, 2.0])
    g = reg.gauge("util")
    g.set(0.5)
    assert reg.gauge("util").value == 0.5
    s = reg.time_series("depth.series")
    s.record(0.0, 3.0)
    assert reg.time_series("depth.series").series() == [(0.0, 3.0)]


def test_to_json_is_deterministic_and_schema_tagged():
    def build():
        reg = MetricsRegistry()
        reg.histogram("b").observe(7)
        reg.histogram("a").observe(3)
        reg.gauge("g").set(1.25)
        reg.time_series("s").record(1.0, 2.0)
        return reg

    text_1, text_2 = build().to_json(), build().to_json()
    assert text_1 == text_2
    doc = json.loads(text_1)
    assert doc["schema"] == 1
    assert list(doc["histograms"]) == ["a", "b"]
    assert doc["series"]["s"] == {"mode": "sampled", "t": [1.0], "v": [2.0]}


def test_fill_link_utilization_from_tracer_counters():
    reg = MetricsRegistry()
    tracer = Tracer()
    tracer.record("net.link[n0->n1].busy_s", 10.0, 4.0)
    tracer.record("net.link[n0->n1].bytes", 10.0, 1e6)  # not a busy counter
    assert reg.fill_link_utilization(tracer) == 1
    assert reg.gauges["net.link[n0->n1].utilization"].value == \
        pytest.approx(0.4)
    # None tracer and zero-length traces are no-ops.
    assert reg.fill_link_utilization(None) == 0
    assert MetricsRegistry().fill_link_utilization(Tracer()) == 0
