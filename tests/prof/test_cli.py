"""End-to-end tests of the ``repro-perf`` CLI and ``repro perf`` alias."""

import json
import subprocess
import sys

import pytest

from repro.prof import EngineProfiler, installed_profiler, write_artifacts
from repro.prof.cli import main
from repro.prof.export import load_profile
from repro.simengine import Delay, Simulator


def _synthetic_profile(tmp_path, stem, delays):
    """Record a tiny real sim into ``tmp_path`` and return its paths."""
    prof = EngineProfiler()
    with installed_profiler(prof):
        sim = Simulator()

        def proc(sim):
            for d in delays:
                yield Delay(d)

        sim.spawn(proc(sim), name="rank0")
        sim.run()
    prof.finalize(None)
    return write_artifacts(prof, str(tmp_path), stem, meta={"exp_id": stem})


@pytest.fixture(scope="module")
def recorded(tmp_path_factory):
    """One real ``record`` run (fig22) shared by the read-only commands."""
    out = tmp_path_factory.mktemp("profiles")
    assert main(["record", "--exp", "fig22", "--out", str(out)]) == 0
    return out


def test_record_writes_all_three_artifacts(recorded, capsys):
    names = sorted(p.name for p in recorded.iterdir())
    assert names == [
        "fig22.folded",
        "fig22.metrics.json",
        "fig22.profile.json",
    ]
    profile = load_profile(str(recorded / "fig22.profile.json"))
    assert profile["engine"]["events"] > 0
    assert profile["meta"]["exp_id"] == "fig22"


def test_record_unknown_experiment_is_exit_2(tmp_path, capsys):
    assert main(["record", "--exp", "nope", "--out", str(tmp_path)]) == 2
    assert "repro-perf:" in capsys.readouterr().err


def test_summary_reports_hotspots_and_attribution(recorded, capsys):
    assert main(
        ["summary", str(recorded / "fig22.profile.json"), "--top", "5"]
    ) == 0
    out = capsys.readouterr().out
    assert "engine profile" in out
    assert "engine phases by self time" in out
    assert "top 5 callsites by inclusive time" in out
    assert "scheduling edges" in out
    # Acceptance: the hotspot table attributes >=95% of wall time.
    attributed = float(out.split("attributed: ")[1].split("%")[0])
    assert attributed >= 95.0


def test_summary_defaults_to_profiles_dir(recorded, tmp_path,
                                          monkeypatch, capsys):
    monkeypatch.chdir(tmp_path)
    assert main(["summary"]) == 2
    assert "no profiles" in capsys.readouterr().err
    _synthetic_profile(tmp_path / "profiles", "mini", [0.1, 0.2])
    assert main(["summary"]) == 0
    assert "mini.profile.json" in capsys.readouterr().out


def test_flame_emits_folded_stacks(recorded, tmp_path, capsys):
    profile = str(recorded / "fig22.profile.json")
    assert main(["flame", profile]) == 0
    out = capsys.readouterr().out
    lines = [l for l in out.splitlines() if l]
    assert lines == sorted(lines)
    # flamegraph.pl format: "path;seg;seg <integer>".
    for line in lines:
        path, _, value = line.rpartition(" ")
        assert path and int(value) >= 0
    target = tmp_path / "out.folded"
    assert main(["flame", profile, "-o", str(target)]) == 0
    assert target.read_text() == out


def test_diff_shows_signed_deltas_and_fail_over_gate(tmp_path, capsys):
    a = _synthetic_profile(tmp_path / "a", "run", [0.1] * 3)[0]
    b = _synthetic_profile(tmp_path / "b", "run", [0.1] * 3)[0]
    assert main(["diff", a, b]) == 0
    out = capsys.readouterr().out
    assert "profile diff (A -> B)" in out
    assert "delta_ms" in out and "delta_%" in out
    # Inflate one phase in B far beyond the floor and the threshold.
    doc = json.loads(open(b).read())
    doc["phases"]["proc.delay"]["self_ns"] = int(200e6)
    doc["phases"].setdefault(
        "engine.queue", {"self_ns": 0}
    )["self_ns"] += int(100e6)
    open(b, "w").write(json.dumps(doc))
    assert main(["diff", a, b, "--fail-over", "50"]) == 1
    out = capsys.readouterr().out
    assert "FAIL:" in out and "proc.delay" in out
    # The same drift passes an absurdly loose gate.
    assert main(["diff", a, b, "--fail-over", "1e9"]) == 0
    assert "ok: no phase slowed" in capsys.readouterr().out


def test_fail_over_floor_exempts_tiny_phases(tmp_path, capsys):
    a = _synthetic_profile(tmp_path / "a", "run", [0.1])[0]
    b = _synthetic_profile(tmp_path / "b", "run", [0.1])[0]
    # Triple every phase in B, but keep all under the 5 ms floor.
    doc = json.loads(open(b).read())
    for entry in doc["phases"].values():
        entry["self_ns"] = min(entry["self_ns"] * 3, int(4e6))
    open(b, "w").write(json.dumps(doc))
    assert main(["diff", a, b, "--fail-over", "10"]) == 0
    assert "ok: no phase slowed" in capsys.readouterr().out


def test_bad_schema_is_exit_2(tmp_path, capsys):
    bad = tmp_path / "bad.profile.json"
    bad.write_text('{"schema": 99}')
    assert main(["summary", str(bad)]) == 2
    assert "schema" in capsys.readouterr().err


def test_module_alias_and_repro_perf_passthrough():
    for argv in (
        [sys.executable, "-m", "repro.prof", "--help"],
        [sys.executable, "-m", "repro", "perf", "--", "--help"],
    ):
        proc = subprocess.run(argv, capture_output=True, text=True)
        assert proc.returncode == 0, proc.stderr
        assert "repro-perf" in proc.stdout
