"""Tests for the deep mini-app pieces: CAM remap, POP baroclinic step,
and the AORSA assemble→solve pipeline."""

import numpy as np
import pytest

from repro.apps.aorsa import AORSAPipeline
from repro.apps.cam import RemapStudy
from repro.apps.pop import BaroclinicStep
from repro.machine import xt4


# ------------------------------------------------------------------ remap
def test_remap_roundtrip_exact():
    rng = np.random.default_rng(0)
    field = rng.random((24, 20))
    out, job = RemapStudy(xt4("VN"), 4).roundtrip(field, repeats=3)
    assert np.array_equal(out, field)
    assert job.elapsed_s > 0


def test_remap_uneven_split():
    rng = np.random.default_rng(1)
    field = rng.random((23, 17))  # not divisible by 4
    out, _ = RemapStudy(xt4("SN"), 4).roundtrip(field)
    assert np.array_equal(out, field)


def test_remap_vn_slower_than_sn():
    """The §6.1 observation: the remap Alltoallv pays VN's NIC sharing.
    Compared at 8 tasks so both modes cross the network."""
    shape = (64, 48)
    t_sn = RemapStudy(xt4("SN"), 8).remap_seconds(shape, repeats=2)
    t_vn = RemapStudy(xt4("VN"), 8).remap_seconds(shape, repeats=2)
    assert t_vn > t_sn


def test_remap_validation():
    with pytest.raises(ValueError):
        RemapStudy(xt4("SN"), 0)
    with pytest.raises(ValueError):
        RemapStudy(xt4("SN"), 8).roundtrip(np.zeros((4, 4)))


# -------------------------------------------------------------- baroclinic
def test_baroclinic_distributed_matches_serial():
    bc = BaroclinicStep(nz=5, ny=12, nx=8)
    rng = np.random.default_rng(2)
    t0 = rng.random((5, 12, 8))
    serial = bc.run_serial(t0, 4)
    dist, job = bc.run_distributed(xt4("VN"), 4, t0, 4)
    assert np.allclose(dist, serial, atol=1e-14)
    assert job.elapsed_s > 0


def test_baroclinic_conserves_tracer():
    bc = BaroclinicStep(nz=4, ny=8, nx=8)
    rng = np.random.default_rng(3)
    t0 = rng.random((4, 8, 8))
    out = bc.run_serial(t0, 10)
    assert out.sum() == pytest.approx(t0.sum(), rel=1e-12)


def test_baroclinic_smooths_field():
    bc = BaroclinicStep(nz=3, ny=16, nx=16, kappa_h=0.2)
    rng = np.random.default_rng(4)
    t0 = rng.random((3, 16, 16))
    out = bc.run_serial(t0, 20)
    assert out.std() < t0.std()  # diffusion damps variance


def test_baroclinic_validation():
    with pytest.raises(ValueError):
        BaroclinicStep(nz=2, ny=4, nx=4, kappa_h=0.3)
    bc = BaroclinicStep(nz=2, ny=10, nx=4)
    with pytest.raises(ValueError):
        bc.run_distributed(xt4("SN"), 4, np.zeros((2, 10, 4)), 1)
    with pytest.raises(ValueError):
        bc.step_serial(np.zeros((1, 1, 1)))


def test_baroclinic_nearest_neighbor_scales():
    """More tasks, same grid: simulated step time drops — the phase the
    paper says 'scales well on all platforms'."""
    # Big enough per-task compute that the halo latency doesn't dominate.
    bc = BaroclinicStep(nz=16, ny=32, nx=32)
    t0 = np.random.default_rng(5).random((16, 32, 32))
    _, job2 = bc.run_distributed(xt4("SN"), 2, t0, 6)
    _, job8 = bc.run_distributed(xt4("SN"), 8, t0, 6)
    assert job8.elapsed_s < job2.elapsed_s


# ----------------------------------------------------------------- pipeline
def test_aorsa_pipeline_solves_the_wave_equation():
    field, residual, job = AORSAPipeline(xt4("VN"), 4).run()
    assert residual < 1e-10
    assert job.elapsed_s > 0


def test_aorsa_pipeline_matches_serial_spectral_solve():
    from repro.apps.aorsa import SpectralProblem

    serial = SpectralProblem(32).solve()
    field, _, _ = AORSAPipeline(xt4("SN"), 2, nmodes=32).run()
    assert np.allclose(field, serial, atol=1e-9)


def test_aorsa_ql_operator_properties():
    pipe = AORSAPipeline(xt4("SN"), 2)
    field, _, _ = pipe.run()
    ql = pipe.ql_operator(field)
    assert ql.shape == field.shape
    assert (ql >= 0).all()  # power spectrum is non-negative
    # Smoothing conserves total power.
    raw = np.abs(np.fft.fft(field) / field.size) ** 2
    assert ql.sum() == pytest.approx(raw.sum(), rel=1e-10)


def test_aorsa_pipeline_validation():
    with pytest.raises(ValueError):
        AORSAPipeline(xt4("SN"), 2, nmodes=30, block=8)
