"""NAMD tests: model shapes (Figs 20-21) and the mini-MD engine."""

import numpy as np
import pytest

from repro.apps.namd import MiniMD, NAMD_1M, NAMD_3M, NAMDModel
from repro.machine import xt3_dc, xt4


# ----------------------------------------------------------------- Figure 20
def test_1m_reaches_about_9ms_at_8192():
    t = NAMDModel(xt4("VN"), 8192, NAMD_1M).ms_per_step()
    assert 7.0 < t < 11.0


def test_3m_reaches_about_12ms_at_12000():
    t = NAMDModel(xt4("VN"), 12000, NAMD_3M).ms_per_step()
    assert 10.0 < t < 16.0


def test_xt4_gain_is_order_5_percent():
    for p in (256, 2048):
        t3 = NAMDModel(xt3_dc("VN"), p, NAMD_1M).ms_per_step()
        t4 = NAMDModel(xt4("VN"), p, NAMD_1M).ms_per_step()
        assert 1.02 < t3 / t4 < 1.10


def test_time_per_step_decreases_with_tasks():
    times = [
        NAMDModel(xt4("VN"), p, NAMD_3M).ms_per_step()
        for p in (64, 256, 1024, 4096, 12000)
    ]
    assert times == sorted(times, reverse=True)


def test_1m_scaling_restricted_by_fft_grid():
    # Paper: "scaling for 1M atom system is restricted by the size of
    # underlying FFT grid computations" near 8192 tasks.
    m = NAMDModel(xt4("VN"), 8192, NAMD_1M)
    assert m.max_useful_tasks == 8192
    t8k = NAMDModel(xt4("VN"), 8192, NAMD_1M).ms_per_step()
    t12k = NAMDModel(xt4("VN"), 12000, NAMD_1M).ms_per_step()
    assert t12k > t8k * 0.95  # no further useful speedup


# ----------------------------------------------------------------- Figure 21
def test_vn_penalty_small_at_low_counts():
    sn = NAMDModel(xt4("SN"), 256, NAMD_1M).ms_per_step()
    vn = NAMDModel(xt4("VN"), 256, NAMD_1M).ms_per_step()
    assert vn / sn < 1.1  # "order of 10% or less"


def test_vn_penalty_grows_with_task_count():
    gap = []
    for p in (256, 2048, 6000):
        sn = NAMDModel(xt4("SN"), p, NAMD_1M).ms_per_step()
        vn = NAMDModel(xt4("VN"), p, NAMD_1M).ms_per_step()
        gap.append(vn / sn)
    assert gap[0] < gap[-1]  # "relatively large increases ... in VN mode"


def test_model_validation():
    with pytest.raises(ValueError):
        NAMDModel(xt4("SN"), 0)


# ------------------------------------------------------------------- mini-MD
@pytest.fixture
def md():
    return MiniMD(box=6.0, cutoff=2.5)


def test_lattice_in_box(md):
    pos = md.lattice(3)
    assert pos.shape == (27, 3)
    assert (pos >= 0).all() and (pos < md.box).all()


def test_forces_sum_to_zero(md):
    """Newton's third law: no net force on the whole system."""
    pos = md.lattice(3, seed=1)
    f, _ = md.forces(pos)
    assert np.allclose(f.sum(axis=0), 0.0, atol=1e-9)


def test_two_particle_force_is_central_and_symmetric(md):
    pos = np.array([[1.0, 1.0, 1.0], [2.2, 1.0, 1.0]])
    f, e = md.forces(pos)
    assert np.allclose(f[0], -f[1])
    assert f[0][1] == pytest.approx(0.0)
    assert f[0][2] == pytest.approx(0.0)


def test_energy_reasonably_conserved(md):
    pos = md.lattice(3, seed=2)
    vel = np.zeros_like(pos)
    e0 = md.total_energy(pos, vel)
    for _ in range(20):
        pos, vel, _ = md.step(pos, vel, dt=1e-3)
    e1 = md.total_energy(pos, vel)
    assert abs(e1 - e0) < 0.05 * max(1.0, abs(e0))


def test_cutoff_beyond_range_no_force(md):
    pos = np.array([[0.5, 0.5, 0.5], [0.5 + 2.9, 0.5, 0.5]])
    f, e = md.forces(pos)
    assert np.allclose(f, 0.0)
    assert e == pytest.approx(0.0)


def test_box_validation():
    with pytest.raises(ValueError):
        MiniMD(box=4.0, cutoff=2.5)


def test_distributed_matches_serial(md):
    pos0 = md.lattice(3, seed=3)
    vel0 = np.zeros_like(pos0)
    # Serial reference.
    pos_ref, vel_ref = pos0.copy(), vel0.copy()
    for _ in range(3):
        pos_ref, vel_ref, _ = md.step(pos_ref, vel_ref, dt=1e-3)
    pos_par, vel_par, job = md.run_distributed(
        xt4("VN"), 2, pos0, vel0, nsteps=3, dt=1e-3
    )
    assert np.allclose(pos_par, pos_ref, atol=1e-10)
    assert np.allclose(vel_par, vel_ref, atol=1e-10)
    assert job.elapsed_s > 0
