"""Integration tests: full CAM and POP timesteps on the simulated MPI."""

import numpy as np
import pytest

from repro.apps.cam.minicam import MiniCAM
from repro.apps.pop.minipop import MiniPOP
from repro.machine import xt4


@pytest.fixture
def q0():
    return np.random.default_rng(0).random((16, 16))


@pytest.fixture
def t0():
    return np.random.default_rng(1).random((4, 16, 12))


# --------------------------------------------------------------------- CAM
def test_minicam_conserves_tracer(q0):
    out, job, _ = MiniCAM(xt4("VN"), 4).run(q0, nsteps=3)
    assert out.sum() == pytest.approx(q0.sum(), rel=1e-12)
    assert job.elapsed_s > 0


def test_minicam_rank_count_invariance(q0):
    out2, _, _ = MiniCAM(xt4("SN"), 2).run(q0, nsteps=2)
    out4, _, _ = MiniCAM(xt4("SN"), 4).run(q0, nsteps=2)
    assert np.allclose(out2, out4, atol=1e-12)


def test_minicam_profiles_show_the_papers_operations(q0):
    breakdown = MiniCAM(xt4("VN"), 4).mpi_breakdown(q0, nsteps=2)
    # The step's MPI inventory: halos, remap alltoallv, physics allreduce.
    assert breakdown["alltoallv"] > 0
    assert breakdown["sendrecv"] > 0
    assert breakdown["allreduce"] > 0


def test_minicam_remap_is_dominant_mpi_cost(q0):
    """The §6.1 structure: the remap Alltoallv outweighs the halos."""
    breakdown = MiniCAM(xt4("VN"), 4).mpi_breakdown(q0, nsteps=2)
    assert breakdown["alltoallv"] > breakdown["sendrecv"]


def test_minicam_validation(q0):
    with pytest.raises(ValueError):
        MiniCAM(xt4("SN"), 3)  # 16 % 3 != 0
    with pytest.raises(ValueError):
        MiniCAM(xt4("SN"), 4).run(np.zeros((4, 4)))


# --------------------------------------------------------------------- POP
def test_minipop_conserves_tracer(t0):
    tracer, eta, phase, job = MiniPOP(xt4("VN"), 4).run(t0, nsteps=3)
    assert tracer.sum() == pytest.approx(t0.sum(), rel=1e-12)
    assert eta.shape == (16, 12)
    assert job.elapsed_s > 0


def test_minipop_barotropic_dominates_at_mini_scale(t0):
    """Tiny grids are the latency-bound regime: the CG allreduces dwarf
    the baroclinic stencil — the paper's large-task-count situation."""
    _, _, phase, _ = MiniPOP(xt4("VN"), 4).run(t0, nsteps=2)
    assert phase["barotropic"] > phase["baroclinic"]


def test_minipop_cg_variants_agree_and_cgcg_is_faster(t0):
    _, eta_std, phase_std, _ = MiniPOP(xt4("VN"), 4, solver="cg").run(t0, 2)
    _, eta_cgc, phase_cgc, _ = MiniPOP(xt4("VN"), 4, solver="cgcg").run(t0, 2)
    assert np.allclose(eta_std, eta_cgc, atol=1e-5)
    assert phase_cgc["barotropic"] < phase_std["barotropic"]


def test_minipop_rank_count_invariance(t0):
    tr2, eta2, _, _ = MiniPOP(xt4("SN"), 2).run(t0, nsteps=2)
    tr4, eta4, _, _ = MiniPOP(xt4("SN"), 4).run(t0, nsteps=2)
    assert np.allclose(tr2, tr4, atol=1e-12)
    assert np.allclose(eta2, eta4, atol=1e-8)


def test_minipop_validation():
    with pytest.raises(ValueError):
        MiniPOP(xt4("SN"), 3)  # 16 % 3
    with pytest.raises(ValueError):
        MiniPOP(xt4("SN"), 4, solver="jacobi")
    with pytest.raises(ValueError):
        MiniPOP(xt4("SN"), 4).run(np.zeros((1, 1, 1)))
