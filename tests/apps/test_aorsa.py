"""AORSA tests: model shapes (Fig. 23) and the spectral mini-solver."""

import numpy as np
import pytest

from repro.apps.aorsa import AORSAModel, SpectralProblem
from repro.machine import xt3_dc, xt4
from repro.machine.configs import xt3_xt4_combined


# ----------------------------------------------------------------- Figure 23
def test_solver_efficiency_near_measured_at_4k():
    # Paper §6.5: 16.7 TFLOPS on 4,096 cores = 78.4% of peak.
    a = AORSAModel(xt4("VN"), 4096)
    assert a.solver_efficiency() == pytest.approx(0.784, abs=0.04)
    assert a.solver_tflops() == pytest.approx(16.7, rel=0.05)


def test_efficiency_drops_at_22500_cores():
    # Paper: "HPL yields only 65% of peak on 22,500 cores for this problem."
    a = AORSAModel(xt3_xt4_combined("VN"), 22500)
    assert 0.60 < a.solver_efficiency() < 0.74
    assert a.solver_efficiency() < AORSAModel(xt4("VN"), 4096).solver_efficiency()


def test_larger_grid_restores_efficiency():
    # Paper: the 500x500 grid reaches 74.8% at 22.5k cores.
    comb = xt3_xt4_combined("VN")
    small = AORSAModel(comb, 22500, nx=300, ny=300)
    big = AORSAModel(comb, 22500, nx=500, ny=500)
    assert big.solver_efficiency() > small.solver_efficiency()


def test_500_grid_needs_16k_cores():
    # Paper: "cannot be run on fewer than 16k cores".
    assert not AORSAModel(xt4("VN"), 8192, nx=500, ny=500).fits_in_memory()
    assert AORSAModel(xt3_xt4_combined("VN"), 16000, nx=500, ny=500).fits_in_memory()
    with pytest.raises(ValueError, match="does not fit"):
        AORSAModel(xt4("VN"), 8192, nx=500, ny=500).solve_minutes()


def test_strong_scaling_grind_time_decreases():
    comb = xt3_xt4_combined("VN")
    totals = [
        AORSAModel(xt4("VN"), 4096).total_minutes(),
        AORSAModel(xt4("VN"), 8192).total_minutes(),
        AORSAModel(comb, 16000).total_minutes(),
        AORSAModel(comb, 22500).total_minutes(),
    ]
    assert totals == sorted(totals, reverse=True)


def test_xt4_faster_than_xt3_at_4k():
    t3 = AORSAModel(xt3_dc("VN"), 4096).total_minutes()
    t4 = AORSAModel(xt4("VN"), 4096).total_minutes()
    assert t4 < t3


def test_ql_phase_smaller_than_solve():
    a = AORSAModel(xt4("VN"), 4096)
    assert 0.0 < a.ql_minutes() < a.solve_minutes()


def test_model_validation():
    with pytest.raises(ValueError):
        AORSAModel(xt4("SN"), 0)
    with pytest.raises(ValueError):
        AORSAModel(xt4("SN"), 64, nx=0)


# ----------------------------------------------------------- spectral solver
def test_spectral_solution_satisfies_equation():
    sp = SpectralProblem(64)
    e = sp.solve()
    assert sp.residual(e) < 1e-10


def test_spectral_residual_of_wrong_field_is_large():
    sp = SpectralProblem(64)
    wrong = np.ones(64, dtype=complex)
    assert sp.residual(wrong) > 1e-2


def test_spectral_constant_ksq_reduces_to_diagonal():
    """With epsilon=0 the mode-coupling matrix is diagonal."""
    sp = SpectralProblem(32, epsilon=0.0)
    a = sp.assemble()
    off = a - np.diag(np.diag(a))
    assert np.max(np.abs(off)) < 1e-12


def test_spectral_convergence_with_modes():
    """More modes -> the solution stabilizes (spectral accuracy)."""
    coarse = SpectralProblem(32).solve()
    fine = SpectralProblem(64).solve()
    # Compare on the shared collocation points (every other fine point).
    assert np.max(np.abs(fine[::2] - coarse)) < 1e-6


def test_spectral_validation():
    with pytest.raises(ValueError):
        SpectralProblem(12)
    with pytest.raises(ValueError):
        SpectralProblem(2)
