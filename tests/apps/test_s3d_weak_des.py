"""DES weak-scaling of the real S3D proxy vs the Figure-22 claims."""

import pytest

from repro.apps.s3d.weak import S3DWeakScalingRun
from repro.machine import xt4


def test_weak_scaling_nearly_flat():
    run = S3DWeakScalingRun(xt4("SN"), rows_per_task=8, nx=16)
    costs = run.sweep([2, 4, 8])
    assert max(costs) / min(costs) < 1.3


def test_vn_costs_more_per_task_than_sn():
    sn = S3DWeakScalingRun(xt4("SN")).cost_per_point_us(8)
    vn = S3DWeakScalingRun(xt4("VN")).cost_per_point_us(8)
    assert vn > sn


def test_validation():
    with pytest.raises(ValueError):
        S3DWeakScalingRun(xt4("SN"), rows_per_task=4)
