"""Tests for the slab-decomposed PME proxy (NAMD's FFT-grid limiter)."""

import numpy as np
import pytest

from repro.apps.namd.pme import PMEProxy, spread_charges
from repro.machine import xt4


@pytest.fixture
def neutral_system():
    rng = np.random.default_rng(0)
    pos = rng.random((60, 2))
    q = rng.standard_normal(60)
    q -= q.mean()
    return pos, q


def test_spread_conserves_total_charge(neutral_system):
    pos, q = neutral_system
    rho = spread_charges(pos, q, 16, 1.0)
    assert rho.sum() == pytest.approx(q.sum(), abs=1e-12)
    assert rho.shape == (16, 16)


def test_spread_validation():
    with pytest.raises(ValueError):
        spread_charges(np.zeros((3, 3)), np.zeros(3), 8, 1.0)
    with pytest.raises(ValueError):
        spread_charges(np.zeros((3, 2)), np.zeros(4), 8, 1.0)


def test_solve_matches_dense_reference(neutral_system):
    pos, q = neutral_system
    proxy = PMEProxy(xt4("VN"), 4, grid=16)
    rho = spread_charges(pos, q, 16, 1.0)
    phi, energy, job = proxy.solve(rho)
    assert np.allclose(phi, proxy.reference_potential(rho), atol=1e-12)
    assert energy == pytest.approx(proxy.reference_energy(rho), rel=1e-12)
    assert job.elapsed_s > 0


def test_energy_nonnegative(neutral_system):
    pos, q = neutral_system
    proxy = PMEProxy(xt4("SN"), 2, grid=8)
    rho = spread_charges(pos, q, 8, 1.0)
    _, energy, _ = proxy.solve(rho)
    assert energy >= 0  # sum of |rho_k|^2 / k^2


def test_single_point_charge_potential_shape():
    """phi is largest at the charge and decays with distance."""
    proxy = PMEProxy(xt4("SN"), 2, grid=16)
    rho = np.zeros((16, 16))
    rho[8, 8] = 1.0
    rho -= rho.mean()  # neutralize
    phi, _, _ = proxy.solve(rho)
    assert phi[8, 8] == phi.max()
    assert phi[8, 8] > phi[8, 12]


def test_rank_count_invariance(neutral_system):
    pos, q = neutral_system
    rho = spread_charges(pos, q, 16, 1.0)
    phi2, e2, _ = PMEProxy(xt4("SN"), 2, grid=16).solve(rho)
    phi4, e4, _ = PMEProxy(xt4("VN"), 4, grid=16).solve(rho)
    assert np.allclose(phi2, phi4, atol=1e-12)
    assert e2 == pytest.approx(e4, rel=1e-12)


def test_more_ranks_eventually_latency_bound():
    """The FFT-grid restriction in miniature: on a fixed small grid,
    adding ranks stops helping once transposes dominate (paper §6.3)."""
    rho = np.zeros((16, 16))
    rho[3, 5] = 1.0
    t = {}
    for p in (2, 8):
        _, _, job = PMEProxy(xt4("SN"), p, grid=16).solve(rho)
        t[p] = job.elapsed_s
    # 8 ranks on a 16-point grid is not 4x faster than 2 ranks.
    assert t[8] > t[2] / 4


def test_validation():
    with pytest.raises(ValueError):
        PMEProxy(xt4("SN"), 2, grid=12)
    with pytest.raises(ValueError):
        PMEProxy(xt4("SN"), 3, grid=16)
    with pytest.raises(ValueError):
        PMEProxy(xt4("SN"), 2, grid=8).solve(np.zeros((4, 4)))
