"""S3D tests: model shape (Fig. 22) and the DNS proxy numerics."""

import numpy as np
import pytest

from repro.apps.s3d import MiniDNS, S3DModel
from repro.machine import xt3, xt3_dc, xt4


# ----------------------------------------------------------------- Figure 22
def test_xt4_below_xt3():
    x3 = S3DModel(xt3_dc("VN"), 1024).cost_per_point_us()
    x4 = S3DModel(xt4("VN"), 1024).cost_per_point_us()
    assert x4 < x3


def test_vn_costs_about_30_percent_more_than_sn():
    # Paper: "the 30% increase in execution time can be attributed to
    # memory bandwidth contention between cores."
    sn = S3DModel(xt4("SN"), 1024).cost_per_point_us()
    vn = S3DModel(xt4("VN"), 1024).cost_per_point_us()
    assert 1.2 < vn / sn < 1.4


def test_one_and_two_sn_tasks_same_time():
    # Paper: one SN task and two SN tasks have the same execution time
    # (communication overhead is negligible).
    one = S3DModel(xt4("SN"), 1).cost_per_point_us()
    two = S3DModel(xt4("SN"), 2).cost_per_point_us()
    assert two == pytest.approx(one, rel=0.02)


def test_weak_scaling_flat_to_12000():
    series = S3DModel(xt4("VN"), 1).weak_scaling_series(
        (1, 8, 64, 512, 4096, 12000)
    )
    assert max(series) / min(series) < 1.1


def test_magnitude_matches_figure():
    # Fig. 22 y-axis: tens of microseconds per grid point per step.
    for machine in (xt3(), xt4("SN"), xt4("VN"), xt3_dc("VN")):
        c = S3DModel(machine, 512).cost_per_point_us()
        assert 10 < c < 80


def test_model_validation():
    with pytest.raises(ValueError):
        S3DModel(xt4("SN"), 0)


# ------------------------------------------------------------------ numerics
def test_dns_constant_field_is_steady():
    dns = MiniDNS(nx=32, ny=32, u=1.0, v=0.5, nu=0.01)
    q = np.full((32, 32), 1.5)
    out = dns.run_serial(q, dt=1e-3, nsteps=5)
    assert np.allclose(out, 1.5, atol=1e-12)


def test_dns_mass_conservation():
    dns = MiniDNS(nx=32, ny=32)
    rng = np.random.default_rng(0)
    q = rng.random((32, 32))
    out = dns.run_serial(q, dt=5e-4, nsteps=10)
    # Derivative stencils and filter preserve the mean exactly on a
    # periodic domain (all stencil coefficient sums vanish).
    assert out.mean() == pytest.approx(q.mean(), rel=1e-12)


def test_dns_mode_decay_matches_diffusion():
    """A single Fourier mode should decay like exp(-nu k^2 t)."""
    dns = MiniDNS(nx=32, ny=32, u=0.4, v=0.2, nu=0.05)
    x = np.linspace(0, 2 * np.pi, 32, endpoint=False)
    q0 = np.sin(2 * x)[None, :] * np.ones((32, 1))  # mode (kx=2, ky=0)
    dt, nsteps = 2e-3, 50
    out = dns.run_serial(q0, dt, nsteps)
    amp = np.abs(np.fft.fft2(out)).max() / np.abs(np.fft.fft2(q0)).max()
    expected = dns.exact_mode_decay(2, 0, dt * nsteps)
    assert amp == pytest.approx(expected, rel=0.02)


def test_dns_distributed_matches_serial_exactly():
    dns = MiniDNS(nx=16, ny=32)
    rng = np.random.default_rng(1)
    q0 = rng.random((32, 16))
    serial = dns.run_serial(q0, dt=1e-3, nsteps=2)
    dist, job = dns.run_distributed(xt4("VN"), 4, q0, dt=1e-3, nsteps=2)
    assert np.allclose(dist, serial, atol=1e-13)
    assert job.elapsed_s > 0


def test_dns_distributed_validation():
    dns = MiniDNS(nx=16, ny=30)
    with pytest.raises(ValueError):
        dns.run_distributed(xt4("SN"), 4, np.zeros((30, 16)), 1e-3, 1)
    dns2 = MiniDNS(nx=16, ny=16)
    with pytest.raises(ValueError):
        # 4 rows per task < required 8 ghost rows
        dns2.run_distributed(xt4("SN"), 4, np.zeros((16, 16)), 1e-3, 1)


def test_dns_vn_colocation_uses_cheap_intranode_path():
    """At 2 tasks, VN co-locates both ranks on one socket: every exchange
    rides Catamount's intra-node memory-copy path instead of the network,
    so the tiny latency-bound job is *faster* in VN — a real consequence
    of the placement model (§2: same-socket messages are a memory copy)."""
    dns = MiniDNS(nx=16, ny=32)
    q0 = np.random.default_rng(2).random((32, 16))
    _, job_sn = dns.run_distributed(xt4("SN"), 2, q0, 1e-3, 1)
    _, job_vn = dns.run_distributed(xt4("VN"), 2, q0, 1e-3, 1)
    assert job_vn.elapsed_s < job_sn.elapsed_s
