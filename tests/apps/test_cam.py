"""CAM tests: decomposition rules, model shapes (Figs 14-16), mini-dycore."""

import numpy as np
import pytest

from repro.apps.cam import (
    CAMModel,
    D_GRID,
    MiniDycore,
    PhysicsProxy,
    best_configuration,
    decompose,
)
from repro.apps.cam.decomp import max_tasks
from repro.apps.cam.physics import balance_columns, column_weights
from repro.machine import PLATFORMS, xt3, xt3_dc, xt4


# ------------------------------------------------------------- decomposition
def test_1d_limit_is_120_tasks():
    # Paper: >= 3 latitudes per task, 361 latitudes -> 120 tasks max for 1D.
    assert decompose(D_GRID, 120).kind == "1d"
    assert decompose(D_GRID, 128).kind == "2d"


def test_2d_limit_is_960_tasks():
    assert max_tasks(D_GRID) == 960
    d = decompose(D_GRID, 960)
    assert d.kind == "2d"
    assert d.nlat_tasks == 120 and d.nlev_tasks == 8
    with pytest.raises(ValueError):
        decompose(D_GRID, 961)


def test_decompose_validation():
    with pytest.raises(ValueError):
        decompose(D_GRID, 0)


def test_pacing_block_shrinks_with_tasks():
    blocks = [decompose(D_GRID, p).dyn_block_cells for p in (60, 120, 504, 960)]
    assert blocks == sorted(blocks, reverse=True)


def test_imbalance_at_least_one():
    for p in (32, 120, 504, 960):
        assert decompose(D_GRID, p).dyn_imbalance >= 1.0


# ----------------------------------------------------------------- Figure 14
def test_xt4_beats_xt3_per_task():
    for p in (128, 504, 960):
        assert (
            CAMModel(xt4("SN"), p).throughput_years_per_day()
            > CAMModel(xt3(), p).throughput_years_per_day()
        )


def test_sn_faster_than_vn_per_task():
    # Paper: ~10% advantage for SN at large task counts (MPI-driven).
    sn = CAMModel(xt4("SN"), 960).throughput_years_per_day()
    vn = CAMModel(xt4("VN"), 960).throughput_years_per_day()
    assert 1.02 < sn / vn < 1.25


def test_equal_nodes_vn_wins():
    # Paper: 504 SN vs 960 VN (same node count) -> VN ~30% more throughput.
    sn504 = CAMModel(xt4("SN"), 504).throughput_years_per_day()
    vn960 = CAMModel(xt4("VN"), 960).throughput_years_per_day()
    assert 1.2 < vn960 / sn504 < 1.7


def test_xt3_dual_core_beats_single_core():
    dc = CAMModel(xt3_dc("SN"), 504).throughput_years_per_day()
    sc = CAMModel(xt3(), 504).throughput_years_per_day()
    assert dc > sc


# ----------------------------------------------------------------- Figure 16
def test_dynamics_about_twice_physics():
    m = CAMModel(xt4("VN"), 960)
    ratio = m.dynamics_seconds_per_day() / m.physics_seconds_per_day()
    assert 1.5 < ratio < 2.8


def test_alltoallv_dominates_physics_sn_vn_gap():
    # Paper: ~70% of the SN/VN physics difference is MPI_Alltoallv.
    sn = CAMModel(xt4("SN"), 960)
    vn = CAMModel(xt4("VN"), 960)
    gap = vn.physics_seconds_per_day() - sn.physics_seconds_per_day()
    a2av = (
        vn.physics_alltoallv_seconds_per_day()
        - sn.physics_alltoallv_seconds_per_day()
    )
    assert gap > 0
    assert 0.5 < a2av / gap <= 1.0


def test_remap_drives_dynamics_gap():
    sn = CAMModel(xt4("SN"), 960)
    vn = CAMModel(xt4("VN"), 960)
    gap = vn.dynamics_seconds_per_day() - sn.dynamics_seconds_per_day()
    comm = (
        vn.dynamics_comm_seconds_per_day() - sn.dynamics_comm_seconds_per_day()
    )
    assert comm / gap > 0.4  # "much of the performance difference"


# ----------------------------------------------------------------- Figure 15
def test_xt4_brackets_p575():
    sn = CAMModel(xt4("SN"), 960).throughput_years_per_day()
    vn = CAMModel(xt4("VN"), 960).throughput_years_per_day()
    p575 = best_configuration(PLATFORMS["p575"], 960).throughput_years_per_day()
    assert sn > p575 > vn


def test_platform_orderings_at_960():
    t = {
        name: best_configuration(PLATFORMS[name], 960).throughput_years_per_day()
        for name in ("X1E", "EarthSimulator", "p690", "p575", "SP")
    }
    assert t["SP"] < t["p690"] < t["p575"]  # IBM generations in order
    assert t["X1E"] > t["p575"]  # vector systems lead at this size


def test_vector_penalty_flattens_scaling():
    """Vector platforms lose per-processor efficiency beyond ~750 procs
    (vector length < 128 — paper §6.1)."""
    x1e_small = best_configuration(PLATFORMS["X1E"], 256)
    x1e_big = best_configuration(PLATFORMS["X1E"], 1024)
    per_proc_small = x1e_small.throughput_years_per_day() / 256
    per_proc_big = x1e_big.throughput_years_per_day() / 1024
    assert per_proc_big < per_proc_small * 0.75


def test_openmp_used_on_hybrid_platforms_only():
    m = best_configuration(PLATFORMS["p575"], 960)
    assert m.threads > 1
    with pytest.raises(ValueError):
        CAMModel(xt4("SN"), 64, threads=4)


def test_model_validation():
    with pytest.raises(ValueError):
        CAMModel(xt4("SN"), 64, threads=0)
    with pytest.raises(ValueError):
        best_configuration(PLATFORMS["p575"], 0)


# -------------------------------------------------------------- mini-dycore
def test_dycore_conserves_tracer_mass():
    dyc = MiniDycore(nlat=16, nlon=24)
    rng = np.random.default_rng(0)
    q = rng.random((16, 24))
    total0 = q.sum()
    q5 = dyc.run_serial(q, 5)
    assert q5.sum() == pytest.approx(total0, rel=1e-12)


def test_dycore_preserves_constant_field():
    dyc = MiniDycore(nlat=8, nlon=8)
    q = np.full((8, 8), 2.5)
    assert np.allclose(dyc.run_serial(q, 3), 2.5)


def test_dycore_translates_peak_downwind():
    dyc = MiniDycore(nlat=16, nlon=16, u=1.0, v=0.0, dt=1.0)  # CFL=1: exact shift
    q = np.zeros((16, 16))
    q[8, 4] = 1.0
    q1 = dyc.step_serial(q)
    assert q1[8, 5] == pytest.approx(1.0)
    assert q1[8, 4] == pytest.approx(0.0)


def test_dycore_cfl_validation():
    with pytest.raises(ValueError):
        MiniDycore(nlat=8, nlon=8, u=3.0, v=3.0, dt=1.0)


def test_dycore_distributed_matches_serial():
    dyc = MiniDycore(nlat=12, nlon=10)
    rng = np.random.default_rng(1)
    q0 = rng.random((12, 10))
    serial = dyc.run_serial(q0, 4)
    dist, job = dyc.run_distributed(xt4("VN"), 4, q0, 4)
    assert np.allclose(dist, serial)
    assert job.elapsed_s > 0


def test_dycore_distributed_validation():
    dyc = MiniDycore(nlat=10, nlon=8)
    with pytest.raises(ValueError):
        dyc.run_distributed(xt4("SN"), 3, np.zeros((10, 8)), 1)


# -------------------------------------------------------------- physics proxy
def test_balancing_reduces_imbalance():
    # 8 ranks on 4x8 columns: naive blocks are all-day or all-night.
    proxy = PhysicsProxy(nlat=4, nlon=8)
    before = proxy.imbalance_without_balancing(8)
    after = proxy.imbalance_with_balancing(8)
    assert after < before
    assert after == pytest.approx(1.0, abs=0.05)


def test_balance_columns_partitions_all():
    w = column_weights(4, 8)
    parts = balance_columns(w, 3)
    got = np.sort(np.concatenate(parts))
    assert np.array_equal(got, np.arange(32))


def test_balance_validation():
    with pytest.raises(ValueError):
        balance_columns(column_weights(2, 2), 0)


def test_physics_distributed_roundtrip():
    proxy = PhysicsProxy(nlat=4, nlon=8)
    result, job = proxy.run_distributed(xt4("VN"), 4)
    expected = column_weights(4, 8).ravel()
    assert np.allclose(result, expected)
    assert job.elapsed_s > 0
