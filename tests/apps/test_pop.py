"""POP tests: decomposition, model shapes (Figs 17-19), distributed CG."""

import numpy as np
import pytest

from repro.apps.pop import DistributedCG, POP_01_GRID, POPModel
from repro.apps.pop.barotropic import serial_solve
from repro.apps.pop.grid import decompose
from repro.machine import xt3, xt3_dc, xt4
from repro.machine.configs import xt3_xt4_combined


# ------------------------------------------------------------- decomposition
def test_decompose_covers_grid():
    d = decompose(POP_01_GRID, 5000)
    assert d.px * d.py == 5000
    assert d.block_nx * d.px >= POP_01_GRID.nx
    assert d.block_ny * d.py >= POP_01_GRID.ny


def test_decompose_prefers_grid_aspect():
    d = decompose(POP_01_GRID, 6)  # 3600x2400 -> 3x2 blocks are square
    assert (d.px, d.py) == (3, 2)


def test_decompose_validation():
    with pytest.raises(ValueError):
        decompose(POP_01_GRID, 0)
    with pytest.raises(ValueError):
        decompose(POP_01_GRID, POP_01_GRID.columns)


# ----------------------------------------------------------------- Figure 17
def test_xt4_beats_xt3_per_task():
    for p in (1000, 5000):
        assert (
            POPModel(xt4("SN"), p).throughput_years_per_day()
            > POPModel(xt3(), p).throughput_years_per_day()
        )


def test_single_to_dual_core_xt3_no_measurable_gain():
    # Paper: clock bump alone "did not improve performance measurably".
    sc = POPModel(xt3(), 2000).throughput_years_per_day()
    dc = POPModel(xt3_dc("SN"), 2000).throughput_years_per_day()
    assert dc / sc < 1.08


def test_equal_nodes_vn_wins_by_about_40_percent():
    sn = POPModel(xt4("SN"), 5000).throughput_years_per_day()
    vn = POPModel(xt4("VN"), 10000).throughput_years_per_day()
    assert 1.15 < vn / sn < 1.6


def test_scales_to_22k_tasks():
    comb = xt3_xt4_combined("VN")
    t = [
        POPModel(comb, p).throughput_years_per_day()
        for p in (5000, 10000, 16000, 22000)
    ]
    assert t == sorted(t)  # still gaining at 22k (paper: "scales very well")


# ----------------------------------------------------------------- Figure 19
def test_barotropic_flat_and_dominant_at_scale():
    comb = xt3_xt4_combined("VN")
    bt = [POPModel(comb, p).barotropic_s_per_day() for p in (5000, 10000, 22000)]
    # Relatively flat...
    assert max(bt) / min(bt) < 1.5
    # ...and the dominant cost at the largest counts.
    m = POPModel(comb, 22000)
    assert m.barotropic_s_per_day() > m.baroclinic_s_per_day()


def test_baroclinic_scales_well():
    comb = xt3_xt4_combined("VN")
    bc = [POPModel(comb, p).baroclinic_s_per_day() for p in (5000, 10000, 22000)]
    assert bc[0] > bc[1] > bc[2]


def test_cg_variant_halves_allreduces_and_helps_at_scale():
    comb = xt3_xt4_combined("VN")
    std = POPModel(comb, 22000, solver="cg")
    cgcg = POPModel(comb, 22000, solver="cgcg")
    assert std.allreduces_per_iteration == 2
    assert cgcg.allreduces_per_iteration == 1
    assert cgcg.barotropic_allreduce_s_per_day() == pytest.approx(
        std.barotropic_allreduce_s_per_day() / 2
    )
    gain = cgcg.throughput_years_per_day() / std.throughput_years_per_day()
    assert gain > 1.15  # "improves POP performance significantly"


def test_solver_validation():
    with pytest.raises(ValueError):
        POPModel(xt4("SN"), 100, solver="gmres")


# ----------------------------------------------------------- distributed CG
def test_serial_solvers_agree():
    rng = np.random.default_rng(0)
    b = rng.standard_normal((16, 12))
    std = serial_solve(b, "cg")
    cgv = serial_solve(b, "cgcg")
    assert std.converged and cgv.converged
    assert np.allclose(std.x, cgv.x, atol=1e-6)


def test_distributed_cg_matches_serial():
    rng = np.random.default_rng(1)
    b = rng.standard_normal((12, 8))
    ref = serial_solve(b, "cg").x
    solver = DistributedCG(xt4("VN"), 4, variant="cg")
    x, iters, calls, job = solver.solve(b)
    assert np.allclose(x, ref, atol=1e-6)
    assert iters > 0
    assert job.elapsed_s > 0


def test_distributed_cgcg_matches_serial_and_halves_reductions():
    rng = np.random.default_rng(2)
    b = rng.standard_normal((12, 8))
    ref = serial_solve(b, "cg").x
    std = DistributedCG(xt4("VN"), 4, variant="cg")
    cgv = DistributedCG(xt4("VN"), 4, variant="cgcg")
    x1, it1, calls1, _ = std.solve(b)
    x2, it2, calls2, _ = cgv.solve(b)
    assert np.allclose(x2, ref, atol=1e-6)
    assert abs(it1 - it2) <= 2
    # Setup costs one fused reduction in both variants.
    per_iter_std = (calls1 - 1) / it1
    per_iter_cgv = (calls2 - 1) / it2
    assert per_iter_std == pytest.approx(2.0)
    assert per_iter_cgv == pytest.approx(1.0)


def test_distributed_cg_is_faster_in_simulated_time_with_cgcg():
    """Fewer allreduces should reduce simulated solve time at fixed size."""
    rng = np.random.default_rng(3)
    b = rng.standard_normal((16, 8))
    _, _, _, job_std = DistributedCG(xt4("VN"), 8, variant="cg").solve(b)
    _, _, _, job_cgv = DistributedCG(xt4("VN"), 8, variant="cgcg").solve(b)
    assert job_cgv.elapsed_s < job_std.elapsed_s


def test_distributed_validation():
    with pytest.raises(ValueError):
        DistributedCG(xt4("SN"), 4, variant="bicg")
    with pytest.raises(ValueError):
        DistributedCG(xt4("SN"), 5).solve(np.zeros((12, 8)))
