"""Tests for S3D checkpoint I/O through the simulated Lustre."""

import pytest

from repro.apps.s3d.checkpoint import STATE_VARIABLES, CheckpointStudy
from repro.lustre import LustreConfig


def test_restart_file_sizing():
    s = CheckpointStudy(ntasks=8)
    assert s.bytes_per_task == 50**3 * STATE_VARIABLES * 8


def test_write_time_positive_and_scales_with_writers():
    small, _ = CheckpointStudy(ntasks=4).write_time_s()
    large, _ = CheckpointStudy(ntasks=32).write_time_s()
    assert 0 < small < large  # servers saturate; more writers take longer


def test_fpp_metadata_grows_ssf_does_not():
    fpp_t, fpp_meta = CheckpointStudy(ntasks=64).write_time_s("file-per-process")
    ssf_t, ssf_meta = CheckpointStudy(ntasks=64).write_time_s("single-shared-file")
    assert fpp_meta > 10 * ssf_meta


def test_shared_file_striped_wide_competitive():
    # With the shared file striped across every OST, data bandwidth
    # matches file-per-process within ~2x.
    fpp_t, _ = CheckpointStudy(ntasks=16).write_time_s("file-per-process")
    ssf_t, _ = CheckpointStudy(ntasks=16).write_time_s("single-shared-file")
    assert ssf_t < 2 * fpp_t


def test_overhead_fraction():
    s = CheckpointStudy(ntasks=16, config=LustreConfig(num_oss=8))
    frac = s.checkpoint_overhead_fraction(
        step_seconds=5.0, steps_between_checkpoints=100
    )
    assert 0 < frac < 0.2
    with pytest.raises(ValueError):
        s.checkpoint_overhead_fraction(0.0, 10)
    with pytest.raises(ValueError):
        s.checkpoint_overhead_fraction(1.0, 0)


def test_validation():
    with pytest.raises(ValueError):
        CheckpointStudy(ntasks=0)
    with pytest.raises(ValueError):
        CheckpointStudy(ntasks=2).write_time_s("strided")
