"""Perf-trajectory keeper: benchmarks/compare.py update/compare loop."""

import importlib.util
import json
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
SCRIPT = REPO / "benchmarks" / "compare.py"


def _load_module():
    spec = importlib.util.spec_from_file_location("bench_compare", SCRIPT)
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


def test_checked_in_baseline_is_loadable_and_complete():
    mod = _load_module()
    baseline = mod.load_baseline(REPO / "BENCH_simulator.json")
    assert set(baseline) == set(mod.BENCHMARKS)
    assert all(v > 0 for v in baseline.values())


def test_compare_verdicts():
    mod = _load_module()
    names = sorted(mod.BENCHMARKS)
    baseline = {name: 1.0 for name in names}
    same = mod.compare(baseline, {name: 1.05 for name in names}, 0.20)
    assert all(ln.startswith("ok") for ln in same)
    slow = mod.compare(baseline, {name: 1.5 for name in names}, 0.20)
    assert all(ln.startswith("REGRESSION") for ln in slow)
    fast = mod.compare(baseline, {name: 0.5 for name in names}, 0.20)
    assert all(ln.startswith("ok") for ln in fast)  # faster never fails
    assert all("baseline stale" in ln for ln in fast)
    missing = mod.compare({}, {name: 1.0 for name in names}, 0.20)
    assert all(ln.startswith("NEW") for ln in missing)


def test_update_then_compare_round_trip(tmp_path):
    baseline = tmp_path / "bench.json"
    update = subprocess.run(
        [sys.executable, str(SCRIPT), "--update", "--repeats", "1",
         "--baseline", str(baseline)],
        capture_output=True, text=True, cwd=REPO,
    )
    assert update.returncode == 0, update.stderr
    doc = json.loads(baseline.read_text())
    assert doc["schema"] == 1
    # A generous tolerance makes the immediate re-compare deterministic
    # even on a noisy box.
    compare = subprocess.run(
        [sys.executable, str(SCRIPT), "--repeats", "1", "--tolerance", "10",
         "--baseline", str(baseline)],
        capture_output=True, text=True, cwd=REPO,
    )
    assert compare.returncode == 0, compare.stdout + compare.stderr


def test_missing_baseline_exits_2(tmp_path):
    proc = subprocess.run(
        [sys.executable, str(SCRIPT), "--repeats", "1",
         "--baseline", str(tmp_path / "nope.json")],
        capture_output=True, text=True, cwd=REPO,
    )
    assert proc.returncode == 2
    assert "cannot load baseline" in proc.stderr
