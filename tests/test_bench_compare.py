"""Perf-trajectory keeper: benchmarks/compare.py update/compare loop."""

import importlib.util
import json
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
SCRIPT = REPO / "benchmarks" / "compare.py"


def _load_module():
    spec = importlib.util.spec_from_file_location("bench_compare", SCRIPT)
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


def _records(values):
    """name → schema-2 record with the given best_s values, no phases."""
    return {name: {"best_s": v, "phases": {}} for name, v in values.items()}


def test_checked_in_baseline_is_loadable_and_complete():
    mod = _load_module()
    baseline = mod.load_baseline(REPO / "BENCH_simulator.json")
    assert set(baseline) == set(mod.BENCHMARKS)
    assert all(rec["best_s"] > 0 for rec in baseline.values())
    # Schema 2: at least the DES microbenchmarks carry phase breakdowns.
    assert baseline["event_loop_100k"]["phases"]
    assert baseline["des_pingpong_1000"]["phases"]


def test_schema1_baseline_still_loads(tmp_path):
    mod = _load_module()
    legacy = tmp_path / "legacy.json"
    legacy.write_text(json.dumps({
        "schema": 1,
        "benchmarks": {"event_loop_100k": {"best_s": 0.25}},
    }))
    baseline = mod.load_baseline(legacy)
    assert baseline == {"event_loop_100k": {"best_s": 0.25, "phases": {}}}


def test_compare_verdicts():
    mod = _load_module()
    names = sorted(mod.BENCHMARKS)
    baseline = _records({name: 1.0 for name in names})
    same = mod.compare(baseline, _records({name: 1.05 for name in names}), 0.20)
    assert all(ln.startswith("ok") for ln in same)
    slow = mod.compare(baseline, _records({name: 1.5 for name in names}), 0.20)
    assert all(ln.startswith("REGRESSION") for ln in slow)
    fast = mod.compare(baseline, _records({name: 0.5 for name in names}), 0.20)
    assert all(ln.startswith("ok") for ln in fast)  # faster never fails
    assert all("baseline stale" in ln for ln in fast)
    missing = mod.compare({}, _records({name: 1.0 for name in names}), 0.20)
    assert all(ln.startswith("NEW") for ln in missing)


def test_compare_per_phase_gate():
    mod = _load_module()
    name = sorted(mod.BENCHMARKS)[0]
    baseline = {name: {"best_s": 1.0,
                       "phases": {"proc.delay": 0.5, "store.put": 0.001}}}
    # Total within tolerance, but one gated phase doubled.
    current = {name: {"best_s": 1.0,
                      "phases": {"proc.delay": 1.0, "store.put": 0.002}}}
    lines = mod.compare(baseline, current, 0.20, phase_tolerance=0.50)
    phase_lines = [ln for ln in lines if "phase" in ln]
    assert phase_lines and all(ln.startswith("REGRESSION") for ln in phase_lines)
    assert any("proc.delay" in ln for ln in phase_lines)
    # store.put is below PHASE_FLOOR_S: exempt despite doubling.
    assert not any("store.put" in ln for ln in phase_lines)
    # Within phase tolerance: no phase lines at all.
    ok = mod.compare(
        baseline,
        {name: {"best_s": 1.0, "phases": {"proc.delay": 0.6}}},
        0.20, phase_tolerance=0.50,
    )
    assert not [ln for ln in ok if "phase" in ln]


def test_phase_report_rows():
    mod = _load_module()
    name = sorted(mod.BENCHMARKS)[0]
    rows = mod.phase_report_rows(
        {name: {"best_s": 1.0, "phases": {"proc.delay": 0.5}}},
        {name: {"best_s": 1.0, "phases": {"proc.delay": 0.75}}},
    )
    assert rows == [{
        "benchmark": name, "phase": "proc.delay",
        "base_ms": 500.0, "cur_ms": 750.0, "delta_%": 50.0,
    }]


def test_update_then_compare_round_trip(tmp_path):
    baseline = tmp_path / "bench.json"
    update = subprocess.run(
        [sys.executable, str(SCRIPT), "--update", "--repeats", "1",
         "--baseline", str(baseline)],
        capture_output=True, text=True, cwd=REPO,
    )
    assert update.returncode == 0, update.stderr
    doc = json.loads(baseline.read_text())
    assert doc["schema"] == 2
    assert all("phases" in rec for rec in doc["benchmarks"].values())
    # A generous tolerance makes the immediate re-compare deterministic
    # even on a noisy box.
    compare = subprocess.run(
        [sys.executable, str(SCRIPT), "--repeats", "1", "--tolerance", "10",
         "--phase-tolerance", "20", "--baseline", str(baseline)],
        capture_output=True, text=True, cwd=REPO,
    )
    assert compare.returncode == 0, compare.stdout + compare.stderr


def test_missing_baseline_exits_2(tmp_path):
    proc = subprocess.run(
        [sys.executable, str(SCRIPT), "--repeats", "1",
         "--baseline", str(tmp_path / "nope.json")],
        capture_output=True, text=True, cwd=REPO,
    )
    assert proc.returncode == 2
    assert "cannot load baseline" in proc.stderr
