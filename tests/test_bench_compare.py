"""Perf-trajectory keeper: benchmarks/compare.py update/compare loop."""

import importlib.util
import json
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
SCRIPT = REPO / "benchmarks" / "compare.py"


def _load_module():
    spec = importlib.util.spec_from_file_location("bench_compare", SCRIPT)
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


def _records(values):
    """name → schema-2 record with the given best_s values, no phases."""
    return {name: {"best_s": v, "phases": {}} for name, v in values.items()}


def test_checked_in_baseline_is_loadable_and_complete():
    mod = _load_module()
    baseline = mod.load_baseline(REPO / "BENCH_simulator.json")
    assert set(baseline) == set(mod.BENCHMARKS)
    assert all(rec["best_s"] > 0 for rec in baseline.values())
    # Schema 2: at least the DES microbenchmarks carry phase breakdowns.
    assert baseline["event_loop_100k"]["phases"]
    assert baseline["des_pingpong_1000"]["phases"]


def test_schema1_baseline_still_loads(tmp_path):
    mod = _load_module()
    legacy = tmp_path / "legacy.json"
    legacy.write_text(json.dumps({
        "schema": 1,
        "benchmarks": {"event_loop_100k": {"best_s": 0.25}},
    }))
    baseline = mod.load_baseline(legacy)
    assert baseline == {"event_loop_100k": {"best_s": 0.25, "phases": {}}}


def test_compare_verdicts():
    mod = _load_module()
    names = sorted(mod.BENCHMARKS)
    baseline = _records({name: 1.0 for name in names})
    same = mod.compare(baseline, _records({name: 1.05 for name in names}), 0.20)
    assert all(ln.startswith("ok") for ln in same)
    slow = mod.compare(baseline, _records({name: 1.5 for name in names}), 0.20)
    assert all(ln.startswith("REGRESSION") for ln in slow)
    fast = mod.compare(baseline, _records({name: 0.5 for name in names}), 0.20)
    assert all(ln.startswith("ok") for ln in fast)  # faster never fails
    assert all("baseline stale" in ln for ln in fast)
    missing = mod.compare({}, _records({name: 1.0 for name in names}), 0.20)
    assert all(ln.startswith("NEW") for ln in missing)


def test_compare_per_phase_gate():
    mod = _load_module()
    name = sorted(mod.BENCHMARKS)[0]
    baseline = {name: {"best_s": 1.0,
                       "phases": {"proc.delay": 0.5, "store.put": 0.001}}}
    # Total within tolerance, but one gated phase doubled.
    current = {name: {"best_s": 1.0,
                      "phases": {"proc.delay": 1.0, "store.put": 0.002}}}
    lines = mod.compare(baseline, current, 0.20, phase_tolerance=0.50)
    phase_lines = [ln for ln in lines if "phase" in ln]
    assert phase_lines and all(ln.startswith("REGRESSION") for ln in phase_lines)
    assert any("proc.delay" in ln for ln in phase_lines)
    # store.put is below PHASE_FLOOR_S: exempt despite doubling.
    assert not any("store.put" in ln for ln in phase_lines)
    # Within phase tolerance: no phase lines at all.
    ok = mod.compare(
        baseline,
        {name: {"best_s": 1.0, "phases": {"proc.delay": 0.6}}},
        0.20, phase_tolerance=0.50,
    )
    assert not [ln for ln in ok if "phase" in ln]


def test_phase_report_rows():
    mod = _load_module()
    name = sorted(mod.BENCHMARKS)[0]
    rows = mod.phase_report_rows(
        {name: {"best_s": 1.0, "phases": {"proc.delay": 0.5}}},
        {name: {"best_s": 1.0, "phases": {"proc.delay": 0.75}}},
    )
    assert rows == [{
        "benchmark": name, "phase": "proc.delay",
        "base_ms": 500.0, "cur_ms": 750.0, "delta_%": 50.0,
        "status": "present",
    }]


def test_phase_report_rows_mark_eliminated_and_new_phases():
    mod = _load_module()
    name = sorted(mod.BENCHMARKS)[0]
    rows = mod.phase_report_rows(
        {name: {"best_s": 1.0, "phases": {"resource.request": 0.1}}},
        {name: {"best_s": 1.0, "phases": {"bench.host": 0.2}}},
    )
    by_phase = {r["phase"]: r["status"] for r in rows}
    assert by_phase == {"resource.request": "eliminated", "bench.host": "new"}


def test_compare_reports_eliminated_phases_without_failing():
    """A baseline phase absent from the new run (the hybrid fast path
    removed the resource holds) used to be a silent pass — it must be an
    explicit, non-failing ELIMINATED line."""
    mod = _load_module()
    name = sorted(mod.BENCHMARKS)[0]
    baseline = {name: {"best_s": 1.0, "phases": {"resource.request": 0.1}}}
    current = {name: {"best_s": 1.0, "phases": {}}}
    lines = mod.compare(baseline, current, 0.20, phase_tolerance=0.50)
    elim = [ln for ln in lines if ln.startswith("ELIMINATED")]
    assert len(elim) == 1 and "resource.request" in elim[0]
    assert not [ln for ln in lines if ln.startswith("REGRESSION")]
    # Sub-floor phases disappear silently (noise, not a subsystem).
    tiny = mod.compare(
        {name: {"best_s": 1.0, "phases": {"store.put": 0.001}}},
        current, 0.20, phase_tolerance=0.50,
    )
    assert not [ln for ln in tiny if ln.startswith("ELIMINATED")]


def test_fail_over_gates_looser_than_tolerance(tmp_path):
    """--fail-over reports at the normal tolerance but only fails the
    exit code beyond the (larger) fail-over fraction."""
    mod = _load_module()
    baseline = tmp_path / "bench.json"
    # A baseline 50x faster than reality: every bench then shows ~5000%
    # of baseline — far beyond --tolerance whatever the runner load, yet
    # far within an absurdly large --fail-over gate (big enough that no
    # cold-import or loaded-runner spike can reach it with --repeats 1).
    real = mod.measure(1)
    doc = {
        "schema": 2,
        "benchmarks": {
            name: {"best_s": rec["best_s"] / 50, "phases": {}}
            for name, rec in real.items()
        },
    }
    baseline.write_text(json.dumps(doc))
    strict = subprocess.run(
        [sys.executable, str(SCRIPT), "--repeats", "1",
         "--tolerance", "0.2", "--baseline", str(baseline)],
        capture_output=True, text=True, cwd=REPO,
    )
    assert strict.returncode == 1, strict.stdout + strict.stderr
    gated = subprocess.run(
        [sys.executable, str(SCRIPT), "--repeats", "1",
         "--tolerance", "0.2", "--fail-over", "100000",
         "--baseline", str(baseline)],
        capture_output=True, text=True, cwd=REPO,
    )
    assert gated.returncode == 0, gated.stdout + gated.stderr
    # The verdict lines still show the strict-tolerance regressions.
    assert "REGRESSION" in gated.stdout


def test_update_then_compare_round_trip(tmp_path):
    baseline = tmp_path / "bench.json"
    update = subprocess.run(
        [sys.executable, str(SCRIPT), "--update", "--repeats", "1",
         "--baseline", str(baseline)],
        capture_output=True, text=True, cwd=REPO,
    )
    assert update.returncode == 0, update.stderr
    doc = json.loads(baseline.read_text())
    assert doc["schema"] == 2
    assert all("phases" in rec for rec in doc["benchmarks"].values())
    # Driver benches are no longer phase-blind: every benchmark records
    # at least the host-side remainder.
    assert all(
        "bench.host" in rec["phases"] for rec in doc["benchmarks"].values()
    )
    # A generous tolerance makes the immediate re-compare deterministic
    # even on a noisy box.
    compare = subprocess.run(
        [sys.executable, str(SCRIPT), "--repeats", "1", "--tolerance", "10",
         "--phase-tolerance", "20", "--baseline", str(baseline)],
        capture_output=True, text=True, cwd=REPO,
    )
    assert compare.returncode == 0, compare.stdout + compare.stderr


def test_missing_baseline_exits_2(tmp_path):
    proc = subprocess.run(
        [sys.executable, str(SCRIPT), "--repeats", "1",
         "--baseline", str(tmp_path / "nope.json")],
        capture_output=True, text=True, cwd=REPO,
    )
    assert proc.returncode == 2
    assert "cannot load baseline" in proc.stderr
