"""Smoke tests: every example script runs cleanly end to end."""

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES = sorted(
    p
    for p in (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
    if p.stem != "regenerate_paper"  # covered (faster) via the CLI tests
)


def _load(path: pathlib.Path):
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    mod = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = mod
    spec.loader.exec_module(mod)
    return mod


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(path, capsys, tmp_path):
    mod = _load(path)
    if path.stem == "lustre_io_study":
        mod.stripe_sweep()
        mod.client_sweep()
    elif path.stem == "mpi_profile_study":
        trace = tmp_path / "trace.json"
        mod.main(trace_out=str(trace))
        assert trace.exists() and trace.stat().st_size > 1000
    else:
        mod.main()
    out = capsys.readouterr().out
    assert len(out) > 100  # produced a real report


def test_regenerate_paper_example(tmp_path, capsys):
    mod = _load(
        pathlib.Path(__file__).parent.parent / "examples" / "regenerate_paper.py"
    )
    assert mod.main(str(tmp_path)) == 0
    assert len(list(tmp_path.glob("*.csv"))) >= 23
