"""Suppression edge cases and CLI behaviours added with simlint v2."""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.lint import lint_source

FIXTURES = Path(__file__).parent / "fixtures"


# -- pragma precedence and placement -----------------------------------------

def test_family_pragma_suppresses_every_rule_in_family():
    src = "import time\nt = time.time()  # simlint: ignore[nondet]\n"
    assert lint_source(src) == []


def test_rule_pragma_from_another_family_does_not_leak():
    # a units pragma must not silence a nondet finding on the same line
    src = "import time\nt = time.time()  # simlint: ignore[units]\n"
    assert [f.rule for f in lint_source(src)] == ["SL201"]


def test_pragma_with_trailing_prose_still_suppresses():
    src = (
        "import time\n"
        "t = time.time()  # simlint: ignore[SL201] — wall clock is fine in "
        "this report-only helper\n"
    )
    assert lint_source(src) == []


def test_pragma_on_any_line_of_a_multiline_statement():
    base = (
        "def f(machine):\n"
        "    x = machine.compute(\n"
        "        latency_us=3.0,{pragma_mid}\n"
        "    ){pragma_end}\n"
        "    return x\n"
    )
    unsuppressed = base.format(pragma_mid="", pragma_end="")
    assert [f.rule for f in lint_source(unsuppressed)] == ["SL303"]
    # pragma on the closing-paren line, far from the reported line
    closing = base.format(pragma_mid="", pragma_end="  # simlint: ignore[SL303]")
    assert lint_source(closing) == []
    # pragma on an argument line works too
    mid = base.format(pragma_mid="  # simlint: ignore[SL303]", pragma_end="")
    assert lint_source(mid) == []


def test_pragma_on_decorator_line():
    src = (
        "def retry(timeout_s):\n"
        "    return lambda f: f\n"
        "\n"
        "\n"
        "@retry(timeout_s=5.0)  # simlint: ignore[SL303]\n"
        "def op():\n"
        "    return 1\n"
    )
    assert lint_source(src) == []
    bare = src.replace("  # simlint: ignore[SL303]", "")
    assert [f.rule for f in lint_source(bare)] == ["SL303"]


def test_ignore_file_pragma_scopes_to_listed_rules():
    src = (
        "# simlint: ignore-file[SL303]\n"
        "import time\n"
        "\n"
        "\n"
        "def f(net):\n"
        "    net.send(latency_us=3.0)\n"  # suppressed file-wide
        "    return time.time()\n"  # SL201 still fires
    )
    assert [f.rule for f in lint_source(src)] == ["SL201"]


def test_bare_ignore_file_pragma_suppresses_everything():
    src = (
        "# simlint: ignore-file\n"
        "import time\n"
        "t = time.time()\n"
    )
    assert lint_source(src) == []


# -- CLI ----------------------------------------------------------------------

def _run_cli(*args, module="repro.lint"):
    root = Path(__file__).parents[2]
    env = dict(os.environ)
    env["PYTHONPATH"] = str(root / "src") + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, "-m", module, *args],
        capture_output=True,
        text=True,
        cwd=root,
        env=env,
    )


def test_cli_select_parse_family_is_known():
    # regression: `--select parse` used to exit 2 because the framework
    # family was missing from the known-selector set
    out = _run_cli(str(FIXTURES / "bad_nondet.py"), "--select", "parse",
                   "--no-cache")
    assert out.returncode == 0, out.stderr
    assert "unknown rule/family" not in out.stderr


def test_cli_select_mixes_family_and_foreign_rule_id():
    out = _run_cli(str(FIXTURES / "bad_nondet.py"), "--select",
                   "yield-from,SL203", "--no-cache")
    assert out.returncode == 1
    lines = [l for l in out.stdout.splitlines() if l.strip()]
    assert lines and all("SL203" in l for l in lines)


def test_cli_explicit_non_python_file_is_usage_error(tmp_path):
    target = tmp_path / "notes.txt"
    target.write_text("not python\n")
    out = _run_cli(str(target), "--no-cache")
    assert out.returncode == 2
    assert "notes.txt" in out.stderr


def test_cli_missing_path_is_usage_error():
    out = _run_cli("no/such/dir", "--no-cache")
    assert out.returncode == 2


def test_cli_format_json_is_parseable():
    out = _run_cli(str(FIXTURES / "bad_nondet.py"), "--format", "json",
                   "--no-cache")
    assert out.returncode == 1
    doc = json.loads(out.stdout)
    assert len(doc) == 6
    assert {"rule", "family", "path", "line", "col", "message"} <= set(doc[0])


def test_cli_format_sarif_is_valid_with_one_result_per_finding():
    out = _run_cli(str(FIXTURES / "bad_nondet.py"), "--format", "sarif",
                   "--no-cache")
    assert out.returncode == 1
    doc = json.loads(out.stdout)
    assert doc["version"] == "2.1.0"
    run = doc["runs"][0]
    assert len(run["results"]) == 6
    rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
    assert {"SL601", "SL701", "SL304"} <= rule_ids
    first = run["results"][0]
    assert first["locations"][0]["physicalLocation"]["region"]["startLine"]


def test_cli_output_file(tmp_path):
    target = tmp_path / "lint.sarif"
    out = _run_cli(str(FIXTURES / "bad_nondet.py"), "--format", "sarif",
                   "-o", str(target), "--no-cache")
    assert out.returncode == 1
    doc = json.loads(target.read_text())
    assert doc["runs"][0]["results"]


def test_repro_lint_subcommand_delegates():
    out = _run_cli("lint", str(FIXTURES / "bad_nondet.py"), "--no-cache",
                   module="repro")
    assert out.returncode == 1
    assert "SL201" in out.stdout
    clean = _run_cli("lint", "src/repro/lint", "--no-cache", module="repro")
    assert clean.returncode == 0, clean.stdout + clean.stderr


def test_cli_update_baseline_then_clean(tmp_path):
    snap = tmp_path / "baseline.json"
    first = _run_cli(str(FIXTURES / "bad_units.py"), "--baseline", str(snap),
                     "--update-baseline", "--no-cache")
    assert first.returncode == 0
    assert "wrote baseline" in first.stderr
    second = _run_cli(str(FIXTURES / "bad_units.py"), "--baseline", str(snap),
                      "--no-cache")
    assert second.returncode == 0
    assert "suppressed" in second.stderr


def test_cli_stats_reports_zero_parsed_on_warm_run(tmp_path):
    target = tmp_path / "mod.py"
    target.write_text("VALUE = 3\n")
    cache_dir = tmp_path / "cache"
    cold = _run_cli(str(target), "--cache-dir", str(cache_dir), "--stats")
    assert "1 parsed" in cold.stderr
    warm = _run_cli(str(target), "--cache-dir", str(cache_dir), "--stats")
    assert "0 parsed" in warm.stderr
