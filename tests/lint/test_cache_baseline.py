"""Lint cache (warm runs parse nothing, closure invalidation) + baseline."""

import json
from pathlib import Path

from repro.lint import LintCache, Program, lint_paths
from repro.lint.baseline import (
    filter_with_baseline,
    load_baseline,
    write_baseline,
)
from repro.lint.core import expand_paths

FIXTURES = Path(__file__).parent / "fixtures"

CHAIN = {
    "a.py": "def base_us(x_us):\n    return x_us\n",
    "b.py": "from a import base_us\n\n\ndef mid(v_us):\n    return base_us(v_us)\n",
    "c.py": "from b import mid\n\n\ndef top(t_us):\n    return mid(t_us)\n",
}


def _write_chain(root, sources=CHAIN):
    # a src/ root so module names match the `from a import ...` imports
    src_root = root / "src"
    src_root.mkdir(parents=True, exist_ok=True)
    paths = []
    for name, src in sources.items():
        p = src_root / name
        p.write_text(src)
        paths.append(str(p))
    return paths


def test_warm_run_parses_nothing(tmp_path):
    paths = _write_chain(tmp_path / "proj")
    cache = LintCache(tmp_path / "cache")

    cold = Program(paths, cache=cache)
    cold.lint_all()
    assert cold.stats["parsed"] == 3
    assert cold.stats["summary_hits"] == cold.stats["findings_hits"] == 0

    warm = Program(paths, cache=cache)
    warm.lint_all()
    assert warm.stats["parsed"] == 0
    assert warm.parsed_paths() == []
    assert warm.stats["summary_hits"] == 3
    assert warm.stats["findings_hits"] == 3


def test_editing_a_module_invalidates_its_reverse_closure(tmp_path):
    paths = _write_chain(tmp_path / "proj")
    src_root = tmp_path / "proj" / "src"
    cache = LintCache(tmp_path / "cache")
    Program(paths, cache=cache).lint_all()

    # editing the leaf module a.py must re-lint a, b and c (closure) ...
    (src_root / "a.py").write_text("def base_us(x_us):\n    return x_us * 1\n")
    run2 = Program(paths, cache=cache)
    run2.lint_all()
    assert run2.stats["summary_hits"] == 2  # only a.py re-summarised
    assert run2.stats["findings_hits"] == 0  # b and c invalidated too
    assert run2.stats["parsed"] == 3  # re-linting them needs their trees

    # ... while editing the top module c.py re-lints only c
    Program(paths, cache=cache).lint_all()  # re-warm
    (src_root / "c.py").write_text(CHAIN["c.py"] + "\n")
    run3 = Program(paths, cache=cache)
    run3.lint_all()
    assert run3.stats["parsed"] == 1
    assert run3.stats["findings_hits"] == 2  # a.py and b.py untouched


def test_cached_findings_round_trip_exactly(tmp_path):
    target = tmp_path / "bad_nondet.py"
    target.write_text((FIXTURES / "bad_nondet.py").read_text())
    cache = LintCache(tmp_path / "cache")
    cold = Program([str(target)], cache=cache).lint_file(str(target))
    warm_program = Program([str(target)], cache=cache)
    warm = warm_program.lint_file(str(target))
    assert warm_program.stats["findings_hits"] == 1
    assert warm == cold
    assert [f.rule for f in warm] == [f.rule for f in cold]


def test_corrupt_cache_entry_is_a_miss(tmp_path):
    target = tmp_path / "mod.py"
    target.write_text("x = 1\n")
    cache = LintCache(tmp_path / "cache")
    Program([str(target)], cache=cache).lint_all()
    for entry in (tmp_path / "cache").rglob("*.json"):
        entry.write_text("{not json")
    rerun = Program([str(target)], cache=cache)
    rerun.lint_all()
    assert rerun.stats["parsed"] == 1  # fell back to parsing, no crash


def test_lint_paths_ignores_cache_misconfiguration(tmp_path):
    # lint_paths without a cache still works end to end
    target = tmp_path / "clean.py"
    target.write_text("VALUE = 3\n")
    assert lint_paths([target]) == []


# -- baseline -----------------------------------------------------------------

def _findings(tmp_path):
    target = tmp_path / "bad_units.py"
    target.write_text((FIXTURES / "bad_units.py").read_text())
    return Program([str(target)]).lint_all()


def test_baseline_round_trip_suppresses_everything(tmp_path):
    findings = _findings(tmp_path)
    assert findings
    snap = tmp_path / "baseline.json"
    n = write_baseline(snap, findings)
    assert n == len(findings)
    kept, suppressed, stale = filter_with_baseline(findings, load_baseline(snap))
    assert kept == [] and suppressed == len(findings) and stale == 0


def test_baseline_survives_line_number_churn(tmp_path):
    findings = _findings(tmp_path)
    snap = tmp_path / "baseline.json"
    write_baseline(snap, findings)
    # prepend two lines: every finding moves, fingerprints must hold
    target = tmp_path / "bad_units.py"
    target.write_text("# moved\n# moved again\n" + target.read_text())
    moved = Program([str(target)]).lint_all()
    kept, suppressed, _ = filter_with_baseline(moved, load_baseline(snap))
    assert kept == [] and suppressed == len(moved)


def test_baseline_reports_stale_entries_and_new_findings(tmp_path):
    findings = _findings(tmp_path)
    snap = tmp_path / "baseline.json"
    write_baseline(snap, findings[:-1])  # one finding is NOT baselined
    kept, suppressed, stale = filter_with_baseline(
        findings, load_baseline(snap)
    )
    assert len(kept) == 1 and suppressed == len(findings) - 1 and stale == 0
    # now pay all the debt: every entry goes stale
    kept, suppressed, stale = filter_with_baseline([], load_baseline(snap))
    assert kept == [] and suppressed == 0 and stale == len(findings) - 1


def test_baseline_schema_is_versioned(tmp_path):
    snap = tmp_path / "baseline.json"
    snap.write_text(json.dumps({"schema": 99, "entries": {}}))
    try:
        load_baseline(snap)
    except ValueError as exc:
        assert "schema" in str(exc)
    else:  # pragma: no cover
        raise AssertionError("expected a schema error")


def test_expand_paths_excludes_fixture_dirs_by_default():
    files = expand_paths([Path(__file__).parent])
    assert not any("fixtures" in Path(f).parts for f in files)
    # explicit fixture files always lint
    explicit = expand_paths([FIXTURES / "bad_units.py"])
    assert len(explicit) == 1
