"""Profile-guided weighting: fractions, tiers, deterministic re-rank."""

import json
from pathlib import Path

from repro.lint import profileguide as pg
from repro.lint.core import Finding
from repro.lint.formats import render_sarif


def _finding(rule, line, path="src/x.py"):
    return Finding(rule=rule, family="perf", path=path, line=line, col=0,
                   message=f"{rule} seeded")


HOT_FRACTIONS = {
    "engine.queue": 0.5,
    "proc.delay": 0.3,
    "event.wake": 0.1,
    "bench.host": 0.1,
}


# -- weights and tiers --------------------------------------------------------

def test_sl904_is_always_weight_one():
    assert pg.weight_for("SL904", {}) == 1.0
    assert pg.weight_for("SL904", HOT_FRACTIONS) == 1.0


def test_affinity_sums_matching_phase_fractions():
    assert pg.weight_for("SL901", HOT_FRACTIONS) == 0.5  # engine.queue
    assert pg.weight_for("SL902", HOT_FRACTIONS) == 0.5
    # proc. prefix (proc.delay) + event.wake
    assert pg.weight_for("SL903", HOT_FRACTIONS) == 0.4
    assert pg.weight_for("SL905", HOT_FRACTIONS) == 0.4
    assert pg.weight_for("SL101", HOT_FRACTIONS) is None  # non-perf rule


def test_tier_thresholds():
    assert pg.tier_for(0.5) == "hot"
    assert pg.tier_for(0.20) == "hot"
    assert pg.tier_for(0.19) == "warm"
    assert pg.tier_for(0.05) == "warm"
    assert pg.tier_for(0.049) == "note"


def test_cold_phases_demote_to_note():
    cold = {"engine.queue": 0.01, "bench.host": 0.99}
    weighted = pg.apply_profile([_finding("SL902", 3)], cold)
    assert weighted[0].tier == "note"
    assert weighted[0].weight == 0.01


# -- fraction loading ---------------------------------------------------------

def test_load_phase_fractions_from_profile_dir(tmp_path):
    doc = {
        "schema": 1,
        "phases": {
            "engine.queue": {"self_ns": 750_000},
            "proc.delay": {"self_ns": 250_000},
        },
    }
    (tmp_path / "fig22.profile.json").write_text(json.dumps(doc))
    fractions = pg.load_phase_fractions(str(tmp_path), bench_path=None)
    assert fractions == {"engine.queue": 0.75, "proc.delay": 0.25}


def test_load_phase_fractions_merges_bench_table(tmp_path):
    bench = {
        "schema": 2,
        "benchmarks": {
            "b": {"best_s": 1.0, "phases": {"engine.queue": 1.0,
                                            "event.wake": 1.0}},
        },
    }
    bench_path = tmp_path / "BENCH_simulator.json"
    bench_path.write_text(json.dumps(bench))
    fractions = pg.load_phase_fractions(None, bench_path=str(bench_path))
    assert fractions == {"engine.queue": 0.5, "event.wake": 0.5}


def test_load_phase_fractions_empty_when_no_sources(tmp_path):
    assert pg.load_phase_fractions(str(tmp_path), bench_path=None) == {}
    # wrong schema is ignored, not an error
    (tmp_path / "BENCH_simulator.json").write_text(json.dumps({"schema": 1}))
    assert pg.load_phase_fractions(
        None, bench_path=str(tmp_path / "BENCH_simulator.json")
    ) == {}


def test_checked_in_bench_table_is_loadable():
    root = Path(__file__).parents[2]
    fractions = pg.load_phase_fractions(None, bench_path=str(root / pg.DEFAULT_BENCH))
    assert fractions and abs(sum(fractions.values()) - 1.0) < 1e-9


# -- re-ranking ---------------------------------------------------------------

def test_apply_profile_reranks_hottest_first():
    findings = [
        _finding("SL903", 1),   # 0.4
        _finding("SL902", 2),   # 0.5
        _finding("SL904", 3),   # 1.0
        Finding(rule="SL101", family="yield-from", path="src/x.py",
                line=4, col=0, message="not perf"),
    ]
    ranked = pg.apply_profile(findings, HOT_FRACTIONS)
    assert [f.rule for f in ranked] == ["SL904", "SL902", "SL903", "SL101"]
    assert ranked[0].weight == 1.0 and ranked[0].tier == "hot"
    assert ranked[-1].weight is None  # non-perf rules pass through


def test_apply_profile_without_data_is_identity():
    findings = [_finding("SL902", 2), _finding("SL904", 1)]
    assert pg.apply_profile(findings, {}) == findings


def test_apply_profile_is_deterministic():
    findings = [_finding("SL90%d" % d, 10 - d) for d in (1, 2, 3, 4, 5)]
    once = pg.apply_profile(findings, HOT_FRACTIONS)
    twice = pg.apply_profile(findings, HOT_FRACTIONS)
    assert [(f.rule, f.weight, f.tier) for f in once] == [
        (f.rule, f.weight, f.tier) for f in twice
    ]


# -- SARIF carries the weight, byte-stably ------------------------------------

def test_sarif_levels_follow_tiers_and_carry_weight():
    ranked = pg.apply_profile(
        [_finding("SL904", 1), _finding("SL902", 2), _finding("SL903", 3)],
        {"engine.queue": 0.06, "bench.host": 0.94},
    )
    doc = json.loads(render_sarif(ranked))
    results = doc["runs"][0]["results"]
    by_rule = {r["ruleId"]: r for r in results}
    assert by_rule["SL904"]["level"] == "error"      # hot
    assert by_rule["SL902"]["level"] == "warning"    # warm (0.06)
    assert by_rule["SL903"]["level"] == "note"       # cold
    assert by_rule["SL902"]["properties"] == {"weight": 0.06, "tier": "warm"}


def test_sarif_output_is_byte_stable():
    findings = [_finding("SL90%d" % d, d) for d in (1, 2, 3, 4, 5)]
    a = render_sarif(pg.apply_profile(findings, HOT_FRACTIONS))
    b = render_sarif(pg.apply_profile(list(findings), dict(HOT_FRACTIONS)))
    assert a == b


def test_unweighted_sarif_keeps_error_level():
    doc = json.loads(render_sarif([_finding("SL902", 2)]))
    result = doc["runs"][0]["results"][0]
    assert result["level"] == "error"
    assert "properties" not in result
