"""SL9xx hot-path performance rules: detection, guards, autofix."""

from pathlib import Path

from repro.lint import apply_fixes, lint_file, lint_paths, lint_source
from repro.lint.fixes import FIXABLE_RULES

FIXTURES = Path(__file__).parent / "fixtures"


def _perf_findings(findings):
    return [f for f in findings if f.rule.startswith("SL9")]


def _by_rule(findings):
    out = {}
    for f in _perf_findings(findings):
        out.setdefault(f.rule, []).append(f)
    return out


# -- seeded fixture: every rule fires at its planted line ---------------------

def test_fixture_seeds_every_sl9_rule():
    findings = _by_rule(lint_file(FIXTURES / "bad_perf.py"))
    assert set(findings) == {"SL901", "SL902", "SL903", "SL904", "SL905"}
    assert [f.line for f in findings["SL904"]] == [17]
    assert sorted(f.line for f in findings["SL902"]) == [26, 35]
    assert [f.line for f in findings["SL901"]] == [34]
    assert [f.line for f in findings["SL903"]] == [36]
    assert [f.line for f in findings["SL905"]] == [37]


def test_sl901_message_names_the_process_function():
    findings = _by_rule(lint_file(FIXTURES / "bad_perf.py"))
    assert "'pump'" in findings["SL901"][0].message
    assert "'pump'" in findings["SL905"][0].message


# -- guards: idiomatic hot-path code stays clean ------------------------------

def test_sl901_ignores_inline_key_and_combiner_lambdas():
    src = (
        "def p(items):\n"
        "    items.sort(key=lambda kv: kv[0])\n"
        "    best = max(items, key=lambda kv: kv[1])\n"
        "    yield best\n"
    )
    assert not _perf_findings(lint_source(src, "src/x.py"))


def test_sl903_recognises_early_return_tracer_guard():
    src = (
        "def p(self, tracer, n):\n"
        "    if tracer is None:\n"
        "        return\n"
        "    tracer.begin(f'send:{n}')\n"
        "    yield n\n"
    )
    assert not _perf_findings(lint_source(src, "src/x.py"))


def test_sl903_recognises_if_body_tracer_guard():
    src = (
        "def p(self, tracer, n):\n"
        "    if tracer is not None:\n"
        "        tracer.begin(f'send:{n}')\n"
        "    yield n\n"
    )
    assert not _perf_findings(lint_source(src, "src/x.py"))


def test_sl903_flags_unguarded_tracer_label():
    src = (
        "def p(self, tracer, n):\n"
        "    tracer.begin(f'send:{n}')\n"
        "    yield n\n"
    )
    findings = _by_rule(lint_source(src, "src/x.py"))
    assert set(findings) == {"SL903"}


def test_sl902_allows_flat_heap_entries():
    src = (
        "import heapq\n"
        "def p(q, t, seq):\n"
        "    heapq.heappush(q, (t, seq))\n"
        "    yield t\n"
    )
    assert not _perf_findings(lint_source(src, "src/x.py"))


def test_sl905_allows_set_membership():
    src = (
        "def p(entries):\n"
        "    pending = {2, 3, 5}\n"
        "    for entry in entries:\n"
        "        if entry in pending:\n"
        "            continue\n"
        "        yield entry\n"
    )
    assert not _perf_findings(lint_source(src, "src/x.py"))


def test_sl905_ignores_scans_outside_process_functions():
    # plain (non-process) helper: linear scan is not a per-event cost
    src = (
        "def helper(entries):\n"
        "    pending = [2, 3]\n"
        "    for entry in entries:\n"
        "        if entry in pending:\n"
        "            return entry\n"
    )
    assert not _perf_findings(lint_source(src, "src/x.py"))


def test_sl904_ignores_install_inside_functions():
    src = (
        "from repro.obs.tracer import Tracer, install\n"
        "def run():\n"
        "    install(Tracer())\n"
    )
    assert not _perf_findings(lint_source(src, "src/x.py"))


def test_pragma_suppresses_perf_rule():
    src = (
        "def p(self, entries):\n"
        "    for entry in entries:\n"
        "        self.sim.schedule(0.0, lambda: self._tick())  # simlint: ignore[SL901]\n"
        "        yield entry\n"
    )
    assert not _perf_findings(lint_source(src, "src/x.py"))


# -- autofix: SL901 hoists the closure to a bound method ----------------------

def test_sl901_is_fixable():
    assert "SL901" in FIXABLE_RULES


def test_sl901_autofix_hoists_and_converges():
    src = (FIXTURES / "bad_perf.py").read_text()
    findings = lint_file(FIXTURES / "bad_perf.py")
    sl901 = [f for f in findings if f.rule == "SL901"]
    assert len(sl901) == 1 and sl901[0].fix is not None
    fixed, applied = apply_fixes(src, findings)
    assert applied == sl901
    assert "self.sim.schedule(0.0, self._tick)" in fixed
    assert "lambda:" not in fixed
    # convergence: the fixed source no longer reports SL901, and a second
    # round of fixes is a no-op
    refindings = lint_source(fixed, str(FIXTURES / "bad_perf.py"))
    assert not [f for f in refindings if f.rule == "SL901"]
    refixed, reapplied = apply_fixes(fixed, refindings)
    assert refixed == fixed and reapplied == []


def test_sl901_fix_skips_lambdas_with_arguments():
    # `lambda: self.cb(x)` captures state — not mechanically hoistable
    src = (
        "def p(self, entries):\n"
        "    for x in entries:\n"
        "        self.sim.schedule(0.0, lambda: self.cb(x))\n"
        "        yield x\n"
    )
    findings = lint_source(src, "src/x.py")
    sl901 = [f for f in findings if f.rule == "SL901"]
    assert len(sl901) == 1 and sl901[0].fix is None


# -- clean scope: the engine's own hot path carries no SL9xx debt -------------

def test_hot_path_packages_are_sl9_clean():
    root = Path(__file__).parents[2]
    findings = lint_paths(
        [
            root / "src" / "repro" / "simengine",
            root / "src" / "repro" / "network",
            root / "src" / "repro" / "mpi",
        ]
    )
    assert not _perf_findings(findings)
