"""Static fast-path eligibility certificate vs runtime ground truth."""

from pathlib import Path

import pytest

from repro.lint import eligibility as el
from repro.lint.core import DEFAULT_EXCLUDES, expand_paths
from repro.lint.program import Program

ROOT = Path(__file__).parents[2]


@pytest.fixture(scope="module")
def verdicts():
    files = expand_paths([str(ROOT / "src")], DEFAULT_EXCLUDES)
    return el.certify_program(Program(files))


def test_certificate_covers_every_registered_driver(verdicts):
    from repro.core.registry import all_experiments

    assert [v.exp_id for v in verdicts] == all_experiments()


def test_expected_fast_drivers(verdicts):
    by = {v.exp_id: v for v in verdicts}
    fast = sorted(e for e, v in by.items() if v.verdict == "fast")
    # the network-simulating drivers; everything else is analytic
    assert fast == ["ext_resilience", "fig12_13"]
    assert "repro.mpi.job:MPIJob" in by["fig12_13"].networks
    assert "repro.network.simnet:SimNetwork" in by["fig12_13"].networks
    # nothing in the shipped tree reaches a process-global installer
    assert not any(v.blockers for v in verdicts)
    assert not any(v.verdict == "blocked" for v in verdicts)


def test_static_verdict_matches_runtime_fast_transfers(verdicts):
    runtime = el.runtime_fast_transfers()
    assert set(runtime) == {v.exp_id for v in verdicts}
    # the acceptance contract: verdict == "fast" iff fast_transfers > 0
    assert el.cross_check(verdicts, runtime) == []
    assert runtime["fig12_13"][0] > 0
    assert runtime["ext_resilience"][0] > 0


def test_render_report_marks_agreement(verdicts):
    runtime = el.runtime_fast_transfers(["fig12_13"])
    report = el.render_report(verdicts, runtime)
    assert "fig12_13" in report and "agree" in report
    assert "MISMATCH" not in report


def test_blocked_verdict_on_reachable_installer():
    program = Program.from_sources(
        {
            "src/repro/obs/tracer.py": "def install(t):\n    return t\n",
            "src/repro/experiments/fake.py": (
                "from repro.core.registry import register\n"
                "from repro.obs.tracer import install\n"
                "def helper():\n"
                "    install(None)\n"
                "@register('fake99')\n"
                "def run():\n"
                "    helper()\n"
            ),
        }
    )
    verdicts = el.certify(program.table)
    assert [v.exp_id for v in verdicts] == ["fake99"]
    assert verdicts[0].verdict == "blocked"
    assert verdicts[0].blockers == ["repro.obs.tracer:install"]


def test_fast_verdict_via_instance_method_chain():
    # network constructed two hops away, on a method of a local instance
    program = Program.from_sources(
        {
            "src/repro/mpi/job.py": (
                "class MPIJob:\n"
                "    def __init__(self, machine, ntasks):\n"
                "        self.machine = machine\n"
                "    def run(self, main):\n"
                "        return main\n"
            ),
            "src/repro/experiments/fake.py": (
                "from repro.core.registry import register\n"
                "from repro.mpi.job import MPIJob\n"
                "class Bench:\n"
                "    def __init__(self, machine):\n"
                "        self.machine = machine\n"
                "    def sweep(self):\n"
                "        job = MPIJob(self.machine, 2)\n"
                "        return job.run(None)\n"
                "@register('fake98')\n"
                "def run():\n"
                "    bench = Bench(None)\n"
                "    return bench.sweep()\n"
            ),
        }
    )
    verdicts = el.certify(program.table)
    assert verdicts[0].verdict == "fast"
    assert verdicts[0].networks == ["repro.mpi.job:MPIJob"]


def test_unreached_network_stays_no_network():
    # a module-level MPIJob user exists but the driver never calls it
    program = Program.from_sources(
        {
            "src/repro/mpi/job.py": (
                "class MPIJob:\n"
                "    def __init__(self, machine, ntasks):\n"
                "        self.machine = machine\n"
            ),
            "src/repro/apps/model.py": (
                "from repro.mpi.job import MPIJob\n"
                "def simulate():\n"
                "    return MPIJob(None, 2)\n"
            ),
            "src/repro/experiments/fake.py": (
                "from repro.core.registry import register\n"
                "@register('fake97')\n"
                "def run():\n"
                "    return 42\n"
            ),
        }
    )
    verdicts = el.certify(program.table)
    assert verdicts[0].verdict == "no-network"
    assert verdicts[0].networks == []
