"""Autofix engine: per-rule repairs, convergence, CLI --fix/--write."""

import os
import shutil
import subprocess
import sys
from pathlib import Path

from repro.lint import apply_fixes, lint_file, lint_source
from repro.lint.fixes import FIXABLE_RULES

FIXTURES = Path(__file__).parent / "fixtures"


def _fix_source(src, filename="src/x.py"):
    findings = lint_source(src, filename)
    fixed, applied = apply_fixes(src, findings)
    return fixed, applied


# -- per-rule repairs ---------------------------------------------------------

def test_fix_sl101_inserts_yield_from():
    fixed, applied = _fix_source(
        "def p(comm):\n    comm.send(dest=1, tag=0, n_bytes=n)\n    yield 1\n"
    )
    assert "    yield from comm.send(" in fixed
    assert [f.rule for f in applied] == ["SL101"]


def test_fix_sl203_wraps_set_iteration_in_sorted():
    fixed, applied = _fix_source(
        "def p(items):\n    for x in {1, 2}:\n        yield x\n"
    )
    assert "for x in sorted({1, 2}):" in fixed
    assert [f.rule for f in applied] == ["SL203"]


def test_fix_sl501_wraps_hold_in_try_finally():
    src = (
        "def p(res):\n"
        "    yield res.request()\n"
        "    yield Delay(1.0)\n"
        "    res.release()\n"
    )
    fixed, applied = _fix_source(src)
    assert [f.rule for f in applied] == ["SL501"]
    assert "    try:\n" in fixed
    assert "    finally:\n" in fixed
    assert "        res.release()" in fixed


def test_fix_sl601_and_sl603_on_helper_flow_fixture():
    src = (FIXTURES / "bad_helper_flow.py").read_text()
    findings = lint_file(FIXTURES / "bad_helper_flow.py")
    fixed, applied = apply_fixes(src, findings)
    assert {f.rule for f in applied} == {"SL601", "SL602", "SL603"}
    assert "    yield from transfer(comm, 1024)" in fixed
    assert "    got = yield from transfer(comm, 2048)" in fixed
    assert "    yield from transfer(comm, 4096)" in fixed
    assert "    return (yield from transfer(comm, 64))" in fixed


def test_unfixable_rules_carry_no_fix():
    findings = lint_file(FIXTURES / "bad_units.py")
    assert findings and all(f.fix is None for f in findings)
    assert not {f.rule for f in findings} & FIXABLE_RULES


# -- convergence --------------------------------------------------------------

def test_fixture_autofixes_converge():
    for name in ("bad_yieldfrom.py", "bad_helper_flow.py"):
        src = (FIXTURES / name).read_text()
        findings = lint_file(FIXTURES / name)
        fixed, applied = apply_fixes(src, findings)
        assert applied, name
        # the fixed source no longer produces any fixable finding
        refindings = lint_source(fixed, f"src/{name}")
        assert not [f for f in refindings if f.fix is not None], name
        # and a second round is a no-op
        refixed, reapplied = apply_fixes(fixed, refindings)
        assert refixed == fixed and reapplied == [], name


def test_overlapping_fixes_apply_one_round_at_a_time():
    # two findings repairing the same call can't both land; the engine
    # keeps the first and the next run mops up the rest
    src = "def p(comm):\n    yield comm.send(dest=1, tag=0, n_bytes=n)\n"
    findings = lint_source(src, "src/x.py")
    fixed, applied = apply_fixes(src, findings)
    assert len(applied) >= 1
    assert "yield from comm.send(" in fixed


# -- concurrent-edit guard ----------------------------------------------------

def test_fix_files_refuses_file_changed_since_parse(tmp_path):
    from repro.lint.fixes import fix_files
    from repro.lint.program import Program

    target = tmp_path / "bad_yieldfrom.py"
    shutil.copy(FIXTURES / "bad_yieldfrom.py", target)
    program = Program([str(target)])
    findings = program.lint_all()
    assert any(f.fix is not None for f in findings)
    # somebody edits the file between the lint parse and --write
    concurrent = program.source_of(str(target)) + "\n# concurrent edit\n"
    target.write_text(concurrent)
    diffs, applied, refused = fix_files(
        findings,
        write=True,
        expected_sources={str(target): program.source_of(str(target))},
    )
    assert refused == [str(target)]
    assert applied == [] and diffs == {}
    # the concurrent edit is intact, not clobbered with stale-span output
    assert target.read_text() == concurrent


def test_fix_files_without_expected_sources_keeps_writing(tmp_path):
    from repro.lint.fixes import fix_files
    from repro.lint.program import Program

    target = tmp_path / "bad_yieldfrom.py"
    shutil.copy(FIXTURES / "bad_yieldfrom.py", target)
    findings = Program([str(target)]).lint_all()
    diffs, applied, refused = fix_files(findings, write=True)
    assert applied and refused == []
    assert "yield from" in target.read_text()


def test_cli_fix_write_exits_3_on_concurrent_edit(tmp_path, monkeypatch, capsys):
    from repro.lint import cli
    from repro.lint.program import Program

    target = tmp_path / "bad_yieldfrom.py"
    shutil.copy(FIXTURES / "bad_yieldfrom.py", target)
    before = target.read_text()
    # make every parsed source look stale against the on-disk bytes
    monkeypatch.setattr(
        Program, "source_of", lambda self, path: before + "# stale\n"
    )
    rc = cli.main([str(target), "--fix", "--write", "--no-cache"])
    captured = capsys.readouterr()
    assert rc == 3
    assert "changed on disk" in captured.err
    assert target.read_text() == before


# -- CLI ----------------------------------------------------------------------

def _run_cli(*args, cwd=None):
    root = Path(__file__).parents[2]
    env = dict(os.environ)
    env["PYTHONPATH"] = str(root / "src") + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, "-m", "repro.lint", *args],
        capture_output=True,
        text=True,
        cwd=cwd or root,
        env=env,
    )


def test_cli_fix_previews_diff_without_writing(tmp_path):
    target = tmp_path / "bad_yieldfrom.py"
    shutil.copy(FIXTURES / "bad_yieldfrom.py", target)
    before = target.read_text()
    out = _run_cli(str(target), "--fix", "--no-cache")
    assert out.returncode == 1
    assert out.stdout.startswith("---")
    assert "+    yield from" in out.stdout
    assert "would fix" in out.stderr
    assert target.read_text() == before


def test_cli_fix_write_applies_and_second_run_is_empty(tmp_path):
    target = tmp_path / "bad_helper_flow.py"
    shutil.copy(FIXTURES / "bad_helper_flow.py", target)
    first = _run_cli(str(target), "--fix", "--write", "--no-cache")
    assert "fixed 4 of 4" in first.stderr
    assert first.returncode == 0
    # idempotence: nothing left to fix, empty diff
    second = _run_cli(str(target), "--fix", "--no-cache")
    assert second.returncode == 0
    assert "would fix 0 of 0" in second.stderr
    assert "---" not in second.stdout
