"""simlint behaviour: each checker catches its fixture, pragmas suppress."""

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.lint import lint_file, lint_source

FIXTURES = Path(__file__).parent / "fixtures"


def findings_for(name):
    return lint_file(FIXTURES / name)


def by_rule(findings):
    out = {}
    for f in findings:
        out.setdefault(f.rule, []).append(f)
    return out


# -- checker 1: yield-from discipline ---------------------------------------

def test_yieldfrom_fixture_rules_and_lines():
    rules = by_rule(findings_for("bad_yieldfrom.py"))
    assert [f.line for f in rules["SL101"]] == [7, 11]
    assert [f.line for f in rules["SL102"]] == [8]
    assert [f.line for f in rules["SL103"]] == [9]
    assert [f.line for f in rules["SL104"]] == [10]
    # the three suppressed recv assignments (13–15) and the clean lines
    # produce nothing else
    assert sum(len(v) for v in rules.values()) == 5
    assert all(f.family == "yield-from" for v in rules.values() for f in v)


def test_yieldfrom_ignores_non_generators_and_stdlib_lookalikes():
    findings = findings_for("bad_yieldfrom.py")
    flagged_lines = {f.line for f in findings}
    # line.split / d.get in false_positive_guards stay silent
    assert not flagged_lines & {26, 27}


# -- checker 2: nondeterminism ----------------------------------------------

def test_nondet_fixture_rules_and_lines():
    rules = by_rule(findings_for("bad_nondet.py"))
    assert [f.line for f in rules["SL201"]] == [11, 12]
    assert [f.line for f in rules["SL202"]] == [13, 14]
    assert [f.line for f in rules["SL203"]] == [15, 16]
    assert sum(len(v) for v in rules.values()) == 6


# -- checker 3: unit suffixes -------------------------------------------------

def test_units_fixture_rules_and_lines():
    rules = by_rule(findings_for("bad_units.py"))
    assert [f.line for f in rules["SL301"]] == [5, 6, 7]
    assert [f.line for f in rules["SL302"]] == [8]
    assert [f.line for f in rules["SL303"]] == [9, 10]
    assert sum(len(v) for v in rules.values()) == 6


def test_units_spec_tables_may_hold_literals():
    src = "spec = NICSpec(mpi_latency_us=6.3)\n"
    assert lint_source(src, "src/repro/machine/configs.py") == []
    assert len(lint_source(src, "src/repro/lustre/client.py")) == 1


# -- checker 4: collective matching ------------------------------------------

def test_collective_fixture_rules_and_lines():
    rules = by_rule(findings_for("bad_collective.py"))
    assert [f.line for f in rules["SL401"]] == [6]
    assert [f.line for f in rules["SL402"]] == [15]
    assert sum(len(v) for v in rules.values()) == 2


# -- checker 5: resource safety ----------------------------------------------

def test_resource_safety_fixture_rules_and_lines():
    rules = by_rule(findings_for("bad_resource.py"))
    assert [f.line for f in rules["SL501"]] == [7, 14, 41]
    assert sum(len(v) for v in rules.values()) == 3
    assert all(f.family == "resource-safety" for f in rules["SL501"])


def test_resource_safety_guarded_and_two_step_forms_stay_silent():
    flagged = {f.line for f in findings_for("bad_resource.py")}
    # safe_hold (21), safe_nested (31), suppressed (48), two-step (57+)
    assert not flagged & {21, 31, 48}
    assert max(flagged) == 41


# -- pragmas -------------------------------------------------------------------

@pytest.mark.parametrize(
    "pragma",
    ["# simlint: ignore[SL201]", "# simlint: ignore[nondet]", "# simlint: ignore"],
)
def test_pragma_forms_suppress(pragma):
    src = f"import time\nt = time.time()  {pragma}\n"
    assert lint_source(src) == []


def test_pragma_for_other_rule_does_not_suppress():
    src = "import time\nt = time.time()  # simlint: ignore[SL301]\n"
    findings = lint_source(src)
    assert [f.rule for f in findings] == ["SL201"]


# -- framework / CLI -----------------------------------------------------------

def test_syntax_error_becomes_parse_finding():
    findings = lint_source("def broken(:\n", "x.py")
    assert [f.rule for f in findings] == ["SL001"]


def test_finding_str_is_location_prefixed():
    f = findings_for("bad_nondet.py")[0]
    assert str(f).startswith(str(FIXTURES / "bad_nondet.py") + ":11:")
    assert "SL201" in str(f)


def _run_cli(*args):
    root = Path(__file__).parents[2]
    env = dict(os.environ)
    env["PYTHONPATH"] = str(root / "src") + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, "-m", "repro.lint", *args],
        capture_output=True,
        text=True,
        cwd=root,
        env=env,
    )


def test_cli_exits_nonzero_on_findings_and_zero_when_clean():
    bad = _run_cli(str(FIXTURES / "bad_nondet.py"))
    assert bad.returncode == 1
    assert "SL201" in bad.stdout and "findings" in bad.stderr
    clean = _run_cli("src/repro/lint")
    assert clean.returncode == 0, clean.stdout + clean.stderr


def test_cli_select_filters_rules():
    out = _run_cli(str(FIXTURES / "bad_nondet.py"), "--select", "SL203")
    assert out.returncode == 1
    lines = [l for l in out.stdout.splitlines() if l.strip()]
    assert len(lines) == 2 and all("SL203" in l for l in lines)


def test_cli_rejects_unknown_select():
    # A typo'd selector must be a usage error, not a silent clean pass.
    out = _run_cli(str(FIXTURES / "bad_nondet.py"), "--select", "SL999")
    assert out.returncode == 2
    assert "unknown rule/family" in out.stderr and "SL999" in out.stderr


def test_cli_list_rules():
    out = _run_cli("--list-rules")
    assert out.returncode == 0
    for rule in ("SL101", "SL201", "SL301", "SL401"):
        assert rule in out.stdout
