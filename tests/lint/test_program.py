"""Interprocedural pass: SL6xx / SL7xx / SL304-305, resolution, refutation."""

from pathlib import Path

from repro.lint import lint_file
from repro.lint.callgraph import module_name_for
from repro.lint.program import Program

FIXTURES = Path(__file__).parent / "fixtures"


def by_rule(findings):
    out = {}
    for f in findings:
        out.setdefault(f.rule, []).append(f)
    return out


# -- helper-flow (SL6xx) ------------------------------------------------------

def test_helper_flow_fixture_rules_and_lines():
    rules = by_rule(lint_file(FIXTURES / "bad_helper_flow.py"))
    assert [f.line for f in rules["SL601"]] == [10]
    assert [f.line for f in rules["SL602"]] == [11, 13]
    assert [f.line for f in rules["SL603"]] == [12]
    assert sum(len(v) for v in rules.values()) == 4
    assert all(f.family == "helper-flow" for v in rules.values() for f in v)


def test_helper_flow_correct_consumption_stays_silent():
    findings = lint_file(FIXTURES / "bad_helper_flow.py")
    # ok() at the bottom consumes transfer() with yield from
    assert not {f.line for f in findings} & {17, 18}


# -- collective-flow (SL7xx) --------------------------------------------------

def test_collective_flow_fixture_rules_and_lines():
    rules = by_rule(lint_file(FIXTURES / "bad_collective_flow.py"))
    assert [f.line for f in rules["SL701"]] == [16]
    assert [f.line for f in rules["SL702"]] == [25]
    assert sum(len(v) for v in rules.values()) == 2


def test_expansion_refutes_per_file_collective_guard():
    # balanced(): SL401 fires per-file (one branch has no visible
    # collective) but helper expansion proves the sequences equal, so the
    # program pass disproves it.
    findings = lint_file(FIXTURES / "bad_collective_flow.py")
    assert not [f for f in findings if f.rule == "SL401"]
    assert not [f for f in findings if f.line >= 28]


# -- units dataflow (SL304/305) -----------------------------------------------

def test_units_flow_fixture_rules_and_lines():
    rules = by_rule(lint_file(FIXTURES / "bad_units_flow.py"))
    assert [f.line for f in rules["SL304"]] == [18, 19]
    assert [f.line for f in rules["SL305"]] == [20]
    assert sum(len(v) for v in rules.values()) == 3


def test_units_propagate_through_unsuffixed_parameter():
    findings = lint_file(FIXTURES / "bad_units_flow.py")
    via_relay = [f for f in findings if f.rule == "SL304" and f.line == 19]
    assert len(via_relay) == 1
    assert "'amount' of relay" in via_relay[0].message


# -- cross-module resolution --------------------------------------------------

HELPERS = """\
def pump(comm, n_bytes):
    yield from comm.send(dest=1, tag=0, n_bytes=n_bytes)
"""

CALLER = """\
from proj.helpers import pump


def main(comm):
    pump(comm, 1024)
    yield from comm.barrier()
"""


def test_cross_module_helper_resolution():
    program = Program.from_sources({
        "src/proj/helpers.py": HELPERS,
        "src/proj/driver.py": CALLER,
    })
    findings = program.lint_file("src/proj/driver.py")
    assert [f.rule for f in findings] == ["SL601"]
    assert "pump(...)" in findings[0].message


def test_reexport_chase_resolves_through_package_init():
    program = Program.from_sources({
        "src/proj/helpers.py": HELPERS,
        "src/proj/__init__.py": "from proj.helpers import pump\n",
        "src/proj/driver.py": (
            "from proj import pump\n\n\n"
            "def main(comm):\n"
            "    pump(comm, 1024)\n"
            "    yield from comm.barrier()\n"
        ),
    })
    findings = program.lint_file("src/proj/driver.py")
    assert [f.rule for f in findings] == ["SL601"]


def test_self_method_resolution():
    src = (
        "class Worker:\n"
        "    def _move(self, comm, size_bytes):\n"
        "        yield from comm.send(dest=1, tag=0, n_bytes=size_bytes)\n"
        "\n"
        "    def run(self, comm, size_bytes):\n"
        "        self._move(comm, size_bytes)\n"
        "        yield from comm.barrier()\n"
    )
    program = Program.from_sources({"src/proj/worker.py": src})
    findings = program.lint_file("src/proj/worker.py")
    assert [(f.rule, f.line) for f in findings] == [("SL601", 6)]
    assert "Worker._move" in findings[0].message


def test_unresolved_dynamic_dispatch_stays_silent():
    src = (
        "def main(comm, registry):\n"
        "    registry.lookup('x')(comm)\n"
        "    yield from comm.barrier()\n"
    )
    program = Program.from_sources({"src/proj/dyn.py": src})
    assert program.lint_file("src/proj/dyn.py") == []


# -- program plumbing ---------------------------------------------------------

def test_module_name_for_strips_src_root():
    assert module_name_for("src/repro/mpi/comm.py") == "repro.mpi.comm"
    assert module_name_for("tests/lint/test_program.py") == (
        "tests.lint.test_program"
    )
    assert module_name_for("src/repro/__init__.py") == "repro"


def test_enclosing_function_finds_innermost():
    src = (
        "class C:\n"
        "    def outer_us(self):\n"
        "        return 1\n"
        "\n\n"
        "def top():\n"
        "    return 2\n"
    )
    program = Program.from_sources({"src/proj/enc.py": src})
    key, info = program.enclosing_function("src/proj/enc.py", 3)
    assert key.endswith(":C.outer_us") and info.qualname == "C.outer_us"
    key, info = program.enclosing_function("src/proj/enc.py", 7)
    assert info.qualname == "top"
    assert program.enclosing_function("src/proj/enc.py", 5) is None


def test_stats_count_parses():
    program = Program.from_sources({"src/proj/a.py": "x = 1\n"})
    program.lint_file("src/proj/a.py")
    assert program.stats["files"] == 1
    assert program.stats["parsed"] == 1
    assert program.parsed_paths() == ["src/proj/a.py"]
