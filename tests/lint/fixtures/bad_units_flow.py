"""Deliberate SL304/SL305 violations: unit dataflow through calls."""


def wait(delay_us):
    return delay_us


def relay(amount):
    # 'amount' has no suffix; it inherits _us from the call below.
    return wait(amount)


def link_speed_gbs(machine):
    return machine.nic.bw_gbs


def run(machine, window_gbs):
    wait(window_gbs)  # SL304: _gbs flows into the _us parameter
    relay(window_gbs)  # SL304: same conflict, one hop removed
    t_us = link_speed_gbs(machine)  # SL305: _us target, _gbs return
    return t_us
