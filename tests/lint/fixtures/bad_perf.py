"""Deliberately hot-path-hostile module: every SL9xx rule fires here.

Seeded violations (one per rule, see tests/lint/test_perf_rules.py):

* SL904 — ``install(Tracer())`` at module import time
* SL902 — ``self.stats`` written outside ``__slots__``; a non-flat
  ``heappush`` entry
* SL901 — per-event lambda scheduled in a process function (fixable)
* SL903 — eagerly formatted wait label in a process function
* SL905 — membership scan against a list inside a process loop
"""

import heapq

from repro.obs.tracer import Tracer, install

install(Tracer())  # import-time process-global installation (SL904)


class Engine:
    __slots__ = ("sim", "queue", "label")

    def __init__(self, sim):
        self.sim = sim
        self.queue = []
        self.stats = {}  # not declared in __slots__ (SL902)

    def _tick(self):
        return None

    def pump(self, entries):
        pending = [2, 3, 5]
        for entry in entries:
            self.sim.schedule(0.0, lambda: self._tick())  # closure (SL901)
            heapq.heappush(self.queue, [entry, 0])  # non-flat entry (SL902)
            self.label = f"wait:{entry}"  # eager wait label (SL903)
            if entry in pending:  # linear scan in a process loop (SL905)
                continue
            yield entry
