"""Fixture: collective-matching violations (family ``collective``)."""


def rank_main(comm):
    if comm.rank == 0:
        yield from comm.allreduce(1.0)           # line 6: SL401 (subset-only)
    if comm.rank == 0:
        total = yield from comm.gather(comm.rank)  # clean: both branches gather
    else:
        total = yield from comm.gather(comm.rank)
    if comm.rank == 0:
        yield from comm.bcast(total)             # simlint: ignore[SL401] — fixture
    if comm.rank != 0:
        return None
    yield from comm.barrier()                    # line 15: SL402 (after early return)
    return total
