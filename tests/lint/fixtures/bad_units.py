"""Fixture: unit-suffix violations (family ``units``)."""


def combine(latency_us, window_s, payload_bytes, size_gib, model):
    wrong_scale = latency_us + window_s          # line 5: SL301 (us vs s)
    wrong_dim = payload_bytes + window_s         # line 6: SL301 (data vs time)
    compared = size_gib > payload_bytes          # line 7: SL301 (gib vs bytes)
    padded_us = latency_us + 5                   # line 8: SL302 (bare literal)
    cfg = model(latency_s=3.5)                   # line 9: SL303 (literal to _s param)
    cfg2 = model(latency_s=latency_us)           # line 10: SL303 (us into _s param)
    ok_convert = latency_us * 1e-6 + window_s    # clean: conversion is a product
    ok_same = payload_bytes + payload_bytes      # clean: same unit
    ok_sign = latency_us > 0                     # clean: sign check
    ok_named = model(latency_s=window_s)         # clean: matching suffix
    allowed = latency_us + window_s              # simlint: ignore[units]
    return (wrong_scale, wrong_dim, compared, padded_us, cfg, cfg2,
            ok_convert, ok_same, ok_sign, ok_named, allowed)
