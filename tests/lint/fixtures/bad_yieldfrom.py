"""Fixture: yield-from discipline violations (family ``yield-from``)."""

from repro.simengine import Delay


def rank_main(comm, store):
    comm.send(b"x", dest=1)                    # line 7: SL101 (discarded send)
    data = comm.recv(source=0)                 # line 8: SL102 (assigned generator)
    yield comm.barrier()                       # line 9: SL103 (yield, not yield from)
    msg = yield from store.get()               # line 10: SL104 (yield from an event)
    Delay(1.0)                                 # line 11: SL101 (discarded event)
    ok = yield from comm.allreduce(1.0)        # clean
    suppressed = comm.recv(source=1)           # simlint: ignore[SL102]
    family_wide = comm.recv(source=2)          # simlint: ignore[yield-from]
    blanket = comm.recv(source=3)              # simlint: ignore
    return data, msg, ok, suppressed, family_wide, blanket


def not_a_generator(comm):
    # Outside a generator the helper tables do not apply.
    return comm.send


def false_positive_guards(gen, line, d):
    """Ambiguous names on non-sim receivers stay silent."""
    parts = line.split(",")
    value = d.get("key")
    yield 0
    return parts, value
