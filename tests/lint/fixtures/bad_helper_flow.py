"""Deliberate SL6xx violations: yield-from discipline through helpers."""


def transfer(comm, n_bytes):
    ack = yield from comm.send(dest=1, tag=0, n_bytes=n_bytes)
    return ack


def main(comm):
    transfer(comm, 1024)  # SL601: result discarded, operation never runs
    got = transfer(comm, 2048)  # SL602: binds a generator object
    yield transfer(comm, 4096)  # SL603: yields a generator, not a command
    return transfer(comm, 64)  # SL602: returns the generator itself


def ok(comm):
    result = yield from transfer(comm, 512)
    return result
