"""Deliberate SL7xx violations: collective matching through helpers."""


def do_reduce(comm, value):
    total = yield from comm.allreduce(value)
    return total


def do_barrier(comm):
    yield from comm.barrier()


def unbalanced(comm):
    # Both branches look collective-free to the per-file SL401, but the
    # helpers expand to different sequences.
    if comm.rank == 0:  # SL701
        yield from do_reduce(comm, 1)
    else:
        yield from do_barrier(comm)


def early_exit(comm):
    if comm.rank == 0:
        return None
    yield from do_reduce(comm, 1)  # SL702: only the surviving ranks reduce


def balanced(comm):
    # Per-file SL401 would flag this (one branch has no visible
    # collective) — helper expansion proves both branches allreduce.
    if comm.rank == 0:
        yield from do_reduce(comm, 1)
    else:
        yield from comm.allreduce(2)
