"""Fixture: resource-safety violations (family ``resource-safety``)."""

from repro.simengine import Delay


def leaky_hold(res):
    yield res.request()                        # line 7: SL501 (no try/finally)
    yield Delay(1.0)
    res.release()


def leaky_in_loop(ports):
    for port in ports:
        yield port.request()                   # line 14: SL501 (no try/finally)
        yield Delay(1.0)
        port.release()


def safe_hold(res):
    try:
        yield res.request()                    # clean: released in finally
        yield Delay(1.0)
    finally:
        res.release()


def safe_nested(resources):
    acquired = []
    try:
        for res in resources:
            yield res.request()                # clean: finally releases
            acquired.append(res)
        yield Delay(1.0)
    finally:
        for res in reversed(acquired):
            res.release()


def finally_without_release(res, log):
    try:
        yield res.request()                    # line 41: SL501 (finally has no release)
        yield Delay(1.0)
    finally:
        log.append("done")


def suppressed_hold(res):
    yield res.request()                        # simlint: ignore[SL501]
    yield Delay(1.0)
    res.release()


def two_step_out_of_scope(res):
    # The assigned-grant form is out of SL501's scope (see docs/LINT.md);
    # the interrupt-safe pattern for it checks grant.triggered in finally.
    grant = res.request()
    try:
        yield grant
        yield Delay(1.0)
    finally:
        if grant.triggered:
            res.release()


def not_a_generator(res):
    return res.request()
