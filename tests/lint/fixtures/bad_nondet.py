"""Fixture: nondeterminism violations (family ``nondet``)."""

import random
import time
from datetime import datetime

import numpy as np


def measure(ranks):
    t0 = time.time()                        # line 11: SL201 (wall clock)
    stamp = datetime.now()                  # line 12: SL201 (wall clock)
    jitter = random.random()                # line 13: SL202 (global RNG)
    noise = np.random.rand(4)               # line 14: SL202 (legacy global RNG)
    order = [r for r in {1, 2, 3}]          # line 15: SL203 (set iteration)
    for r in set(ranks):                    # line 16: SL203 (set iteration)
        pass
    ok_rng = np.random.default_rng(42)      # clean: explicit generator
    ok_sorted = sorted(set(ranks))          # clean: sorted() is an order
    allowed = time.time()                   # simlint: ignore[SL201] — host-side stamp
    return t0, stamp, jitter, noise, order, ok_rng, ok_sorted, allowed
