"""Deliberate SL8xx violations: static schedule-race patterns."""


# -- SL801: same-constant-delay schedules from different functions -----------

def arm_timeout(payload):
    SIM.schedule(5.0, payload)  # SL801: arm_retry also lands on +5.0


def arm_retry(payload):
    SIM.schedule(5.0, payload)  # SL801: tie-break order vs arm_timeout


def arm_keyed(payload):
    SIM.schedule(5.0, payload, key="arm_keyed:0")  # ok: pinned


def burst(payload):
    # ok: same-function pushes keep program order (per-parent FIFO)
    SIM.schedule(7.0, payload)
    SIM.schedule(7.0, payload)


def private_sim(payload):
    sim = object()  # a function-local simulator instance
    sim.schedule(5.0, payload)  # ok: nothing else schedules on *this* sim


# -- SL802: unordered iteration feeding the schedule -------------------------

def drain(links):
    for name in links.keys():  # SL802 (+fix: sorted(...))
        schedule(0.25, name)


def kick(node):
    schedule(1.5, node)


def drain_via_helper(links):
    for name in links.keys():  # SL802: kick() transitively schedules
        kick(name)


def roll(streams):
    for rng in {RNG_A, RNG_B}:  # SL802: set literal, draws in hash order
        rng.random()


def drain_sorted(links):
    for name in sorted(links):  # ok: deterministic order
        schedule(0.75, name)


def tally(links):
    for name in links.keys():  # ok: body neither schedules nor draws
        print(name)


# -- SL803: unsynchronized shared writes across process methods --------------

class Pump:
    def producer(self):
        self.level = 1  # SL803: consumer also writes self.level
        yield None

    def consumer(self):
        self.level = 0
        yield None


class SafePump:
    def fill(self, res):
        yield res.request()
        self.level = 1  # ok: every writer serializes on the resource

    def drain(self, res):
        yield res.request()
        self.level = 0


# -- SL804: RNG stream aliasing ----------------------------------------------

def jitter_send(rng):
    return rng.fork("lat").random()  # SL804: jitter_recv forks 'lat' too


def jitter_recv(rng):
    return rng.fork("lat").normal()  # SL804


def jitter_private(rng):
    return rng.fork("lat.private").random()  # ok: unique stream name
