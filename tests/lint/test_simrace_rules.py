"""SL8xx schedule-race rules: detection, autofixes, selection, caching."""

import subprocess
import sys
from pathlib import Path

from repro.lint import apply_fixes, lint_file, lint_source
from repro.lint.core import matching_rules
from repro.lint.fixes import FIXABLE_RULES

FIXTURES = Path(__file__).parent / "fixtures"
FIXTURE = FIXTURES / "bad_schedule_race.py"


def sl8(findings):
    out = {}
    for f in findings:
        if f.rule.startswith("SL8"):
            out.setdefault(f.rule, []).append(f)
    return out


# -- detection ---------------------------------------------------------------

def test_fixture_rules_and_lines():
    rules = sl8(lint_file(FIXTURE))
    assert [f.line for f in rules["SL801"]] == [7, 11]
    assert [f.line for f in rules["SL802"]] == [32, 41, 46]
    assert [f.line for f in rules["SL803"]] == [67]
    assert [f.line for f in rules["SL804"]] == [85, 89]
    assert all(f.family == "schedule-race" for v in rules.values() for f in v)


def test_good_patterns_stay_silent():
    # keyed schedule, same-function siblings, a private (function-local)
    # simulator, sorted iteration, a non-scheduling loop body,
    # resource-serialized writers, and a unique RNG stream.
    lines = {f.line for v in sl8(lint_file(FIXTURE)).values() for f in v}
    assert not lines & {15, 20, 21, 26, 52, 57, 73, 74, 75, 77, 78, 79, 93}


def test_sl801_same_function_pushes_are_not_grouped():
    src = (
        "def burst(sim_shared):\n"
        "    SIM.schedule(2.0, 'a')\n"
        "    SIM.schedule(2.0, 'b')\n"
    )
    assert not sl8(lint_source(src, "src/x.py"))


def test_sl801_local_simulator_instances_do_not_race():
    src = (
        "def a():\n    sim = make()\n    sim.schedule(2.0, 'a')\n"
        "def b():\n    sim = make()\n    sim.schedule(2.0, 'b')\n"
    )
    assert not sl8(lint_source(src, "src/x.py"))


def test_sl803_requires_process_methods():
    # Plain (non-generator) methods are not processes: no finding.
    src = (
        "class C:\n"
        "    def a(self):\n        self.x = 1\n"
        "    def b(self):\n        self.x = 2\n"
    )
    assert not sl8(lint_source(src, "src/x.py"))


def test_sl850_is_declared_but_never_fires_statically():
    from repro.simrace.rules import ScheduleRaceChecker

    assert "SL850" in ScheduleRaceChecker.rules
    assert not [
        f for f in lint_file(FIXTURE) if f.rule == "SL850"
    ]


# -- autofixes ----------------------------------------------------------------

def test_fixable_contract_covers_sl801_and_sl802():
    assert {"SL801", "SL802"} <= FIXABLE_RULES
    for f in lint_file(FIXTURE):
        if f.rule in ("SL803", "SL804"):
            assert f.fix is None


def test_fix_sl801_inserts_tie_break_key():
    src = FIXTURE.read_text()
    findings = [f for f in lint_file(FIXTURE) if f.rule == "SL801"]
    fixed, applied = apply_fixes(src, findings)
    assert len(applied) == 2
    assert 'SIM.schedule(5.0, payload, key="arm_timeout:7")' in fixed
    assert 'SIM.schedule(5.0, payload, key="arm_retry:11")' in fixed


def test_fix_sl802_wraps_dict_view_in_sorted():
    src = FIXTURE.read_text()
    findings = [f for f in lint_file(FIXTURE) if f.rule == "SL802"]
    fixed, applied = apply_fixes(src, findings)
    # dict views get the sorted() wrap; the set literal repair is left
    # to SL203's fix so the two never double-wrap.
    assert "for name in sorted(links.keys()):" in fixed
    assert len(applied) == 2


def test_sl8_fixes_converge():
    src = FIXTURE.read_text()
    findings = [f for f in lint_file(FIXTURE) if f.rule in ("SL801", "SL802")]
    fixed, applied = apply_fixes(src, findings)
    assert applied
    refindings = [
        f
        for f in lint_source(fixed, str(FIXTURE))
        if f.rule in ("SL801", "SL802") and f.fix is not None
    ]
    refixed, reapplied = apply_fixes(fixed, refindings)
    assert refixed == fixed or not reapplied


# -- selection: SL8 prefix round-trip ----------------------------------------

def test_matching_rules_expands_prefix():
    got = matching_rules("SL8")
    assert got == {"SL801", "SL802", "SL803", "SL804", "SL850"}
    assert matching_rules("SL80") == {"SL801", "SL802", "SL803", "SL804"}
    assert matching_rules("bogus") == set()
    assert matching_rules("SL9") == {
        "SL901", "SL902", "SL903", "SL904", "SL905",
    }


def _run_cli(*args, cwd=None):
    return subprocess.run(
        [sys.executable, "-m", "repro.lint", *args],
        capture_output=True,
        text=True,
        cwd=cwd,
    )


def test_cli_select_sl8_prefix(tmp_path):
    target = tmp_path / "mod.py"
    target.write_text(FIXTURE.read_text(), encoding="utf-8")
    proc = _run_cli(str(target), "--select", "SL8", "--no-cache",
                    "--cache-dir", str(tmp_path / "cache"))
    assert proc.returncode == 1
    assert "SL801" in proc.stdout and "SL804" in proc.stdout
    assert "SL501" not in proc.stdout  # non-SL8 families filtered out


def test_cli_select_unknown_prefix_exits_2(tmp_path):
    target = tmp_path / "mod.py"
    target.write_text("x = 1\n", encoding="utf-8")
    proc = _run_cli(str(target), "--select", "SL99", "--no-cache")
    assert proc.returncode == 2
    assert "unknown rule/family" in proc.stderr


def test_cli_select_sl8_baseline_ratchet(tmp_path):
    target = tmp_path / "mod.py"
    target.write_text(FIXTURE.read_text(), encoding="utf-8")
    baseline = tmp_path / "baseline.json"
    cache = str(tmp_path / "cache")
    first = _run_cli(str(target), "--select", "SL8", "--baseline",
                     str(baseline), "--update-baseline", "--cache-dir", cache)
    assert first.returncode == 0
    # With the debt baselined, a SL8-selected run is clean...
    second = _run_cli(str(target), "--select", "SL8", "--baseline",
                      str(baseline), "--cache-dir", cache)
    assert second.returncode == 0, second.stdout + second.stderr
    # ...and paying the debt makes the baseline entries stale.
    target.write_text("x = 1\n", encoding="utf-8")
    third = _run_cli(str(target), "--select", "SL8", "--baseline",
                     str(baseline), "--cache-dir", cache)
    assert third.returncode == 0
    assert "stale" in third.stderr


def test_sl8_findings_round_trip_through_lint_cache(tmp_path):
    target = tmp_path / "mod.py"
    target.write_text(FIXTURE.read_text(), encoding="utf-8")
    cache = str(tmp_path / "cache")
    cold = _run_cli(str(target), "--select", "SL8", "--cache-dir", cache,
                    "--stats")
    warm = _run_cli(str(target), "--select", "SL8", "--cache-dir", cache,
                    "--stats")
    assert cold.returncode == warm.returncode == 1
    assert cold.stdout == warm.stdout
    assert "0 parsed" in warm.stderr
