"""Tests for the from-scratch radix-2 FFT."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.kernels import fft, fft_flops, ifft


def test_matches_numpy():
    rng = np.random.default_rng(0)
    for n in (1, 2, 8, 64, 256):
        x = rng.standard_normal(n) + 1j * rng.standard_normal(n)
        assert np.allclose(fft(x), np.fft.fft(x))


def test_roundtrip():
    rng = np.random.default_rng(1)
    x = rng.standard_normal(128) + 1j * rng.standard_normal(128)
    assert np.allclose(ifft(fft(x)), x)


def test_delta_gives_flat_spectrum():
    x = np.zeros(16, dtype=complex)
    x[0] = 1.0
    assert np.allclose(fft(x), np.ones(16))


def test_constant_gives_dc_only():
    x = np.ones(32, dtype=complex)
    f = fft(x)
    assert f[0] == pytest.approx(32)
    assert np.allclose(f[1:], 0)


def test_non_power_of_two_rejected():
    with pytest.raises(ValueError):
        fft(np.zeros(12))
    with pytest.raises(ValueError):
        fft(np.zeros(0))


def test_2d_rejected():
    with pytest.raises(ValueError):
        fft(np.zeros((4, 4)))


def test_flops_convention():
    assert fft_flops(1) == 0.0
    assert fft_flops(1024) == 5 * 1024 * 10
    with pytest.raises(ValueError):
        fft_flops(12)


@settings(max_examples=20, deadline=None)
@given(logn=st.integers(0, 9), seed=st.integers(0, 1000))
def test_parseval_property(logn, seed):
    """Energy is conserved: sum|x|^2 == sum|X|^2 / N."""
    n = 2**logn
    rng = np.random.default_rng(seed)
    x = rng.standard_normal(n) + 1j * rng.standard_normal(n)
    X = fft(x)
    assert np.sum(np.abs(x) ** 2) == pytest.approx(np.sum(np.abs(X) ** 2) / n)


@settings(max_examples=20, deadline=None)
@given(logn=st.integers(1, 8), seed=st.integers(0, 1000))
def test_linearity_property(logn, seed):
    n = 2**logn
    rng = np.random.default_rng(seed)
    x = rng.standard_normal(n).astype(complex)
    y = rng.standard_normal(n).astype(complex)
    assert np.allclose(fft(x + 2 * y), fft(x) + 2 * fft(y))
