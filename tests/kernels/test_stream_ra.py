"""Tests for STREAM and RandomAccess kernels."""

import numpy as np
import pytest

from repro.kernels import (
    hpcc_random_stream,
    random_access_update,
    stream_add,
    stream_copy,
    stream_scale,
    stream_triad,
    verify_random_access,
)


@pytest.fixture
def arrays():
    n = 1000
    rng = np.random.default_rng(0)
    return (
        rng.standard_normal(n),
        rng.standard_normal(n),
        rng.standard_normal(n),
    )


def test_copy(arrays):
    a, _, c = arrays
    nbytes = stream_copy(c, a)
    assert np.array_equal(c, a)
    assert nbytes == 2 * 1000 * 8


def test_scale(arrays):
    _, b, c = arrays
    c0 = c.copy()
    nbytes = stream_scale(b, c, 3.0)
    assert np.allclose(b, 3.0 * c0)
    assert nbytes == 2 * 1000 * 8


def test_add(arrays):
    a, b, c = arrays
    a0, b0 = a.copy(), b.copy()
    nbytes = stream_add(c, a, b)
    assert np.allclose(c, a0 + b0)
    assert nbytes == 3 * 1000 * 8


def test_triad(arrays):
    a, b, c = arrays
    b0, c0 = b.copy(), c.copy()
    nbytes = stream_triad(a, b, c, 2.5)
    assert np.allclose(a, b0 + 2.5 * c0)
    assert nbytes == 3 * 1000 * 8


def test_size_mismatch_rejected():
    with pytest.raises(ValueError):
        stream_copy(np.zeros(4), np.zeros(5))


def test_hpcc_stream_is_deterministic_and_nonrepeating():
    s1 = hpcc_random_stream(256, start=1)
    s2 = hpcc_random_stream(256, start=1)
    assert np.array_equal(s1, s2)
    assert len(np.unique(s1)) == 256  # LFSR: no short cycles


def test_hpcc_stream_recurrence():
    # a(k+1) = (a(k) << 1) xor (poly if top bit set).
    s = hpcc_random_stream(100, start=3)
    v = 3
    for got in s:
        top = v & (1 << 63)
        v = (v << 1) & 0xFFFFFFFFFFFFFFFF
        if top:
            v ^= 7
        assert got == v


def test_random_access_serial_batch_is_exact():
    table = np.arange(1024, dtype=np.uint64)
    stream = hpcc_random_stream(4096)
    random_access_update(table, stream, batch=1)
    assert verify_random_access(table, stream) == 0.0


def test_random_access_batched_error_below_hpcc_tolerance():
    # Dropped updates scale ~ batch/table: the real benchmark uses 2^29+
    # tables with a 1024 lookahead; at test scale an equivalent ratio is a
    # 2^18 table with a 64-update lookahead.
    size = 1 << 18
    table = np.arange(size, dtype=np.uint64)
    stream = hpcc_random_stream(size)
    random_access_update(table, stream, batch=64)
    err = verify_random_access(table, stream)
    assert 0.0 < err < 0.01  # HPCC accepts < 1%; batching does drop some


def test_random_access_table_validation():
    with pytest.raises(ValueError):
        random_access_update(np.zeros(100, dtype=np.uint64), np.zeros(1, np.uint64))


def test_stream_negative_length():
    with pytest.raises(ValueError):
        hpcc_random_stream(-1)
