"""Tests for the S3D discretization kernels: FD8 stencil, filter, RK."""

import numpy as np
import pytest

from repro.kernels import RK4_CK5, LowStorageRK, apply_filter10, deriv8
from repro.kernels.stencil import deriv8_flops, filter10_flops


def test_deriv8_exact_on_sine():
    n = 64
    x = np.linspace(0, 2 * np.pi, n, endpoint=False)
    f = np.sin(x)
    df = deriv8(f, x[1] - x[0])
    assert np.allclose(df, np.cos(x), atol=1e-8)


def test_deriv8_convergence_order():
    """Error should drop ~2^8 when the grid is refined 2x."""
    errs = []
    for n in (32, 64):
        x = np.linspace(0, 2 * np.pi, n, endpoint=False)
        f = np.sin(3 * x)
        df = deriv8(f, x[1] - x[0])
        errs.append(np.max(np.abs(df - 3 * np.cos(3 * x))))
    order = np.log2(errs[0] / errs[1])
    assert order > 7.5


def test_deriv8_along_other_axis():
    n = 32
    x = np.linspace(0, 2 * np.pi, n, endpoint=False)
    f2d = np.broadcast_to(np.sin(x), (5, n)).copy()
    df = deriv8(f2d, x[1] - x[0], axis=1)
    assert np.allclose(df, np.broadcast_to(np.cos(x), (5, n)), atol=1e-8)


def test_deriv8_validation():
    with pytest.raises(ValueError):
        deriv8(np.zeros(8), 0.1)  # too short
    with pytest.raises(ValueError):
        deriv8(np.zeros(16), -1.0)


def test_filter10_kills_nyquist_mode():
    n = 32
    f = (-1.0) ** np.arange(n)  # pure Nyquist oscillation
    assert np.allclose(apply_filter10(f), 0.0, atol=1e-12)


def test_filter10_preserves_smooth_field():
    n = 64
    x = np.linspace(0, 2 * np.pi, n, endpoint=False)
    f = np.sin(x)
    filtered = apply_filter10(f)
    assert np.max(np.abs(filtered - f)) < 1e-8  # O(h^10) perturbation


def test_filter10_preserves_constants():
    f = np.full(20, 3.7)
    assert np.allclose(apply_filter10(f), f)


def test_filter10_strength_validation():
    with pytest.raises(ValueError):
        apply_filter10(np.zeros(16), strength=1.5)
    with pytest.raises(ValueError):
        apply_filter10(np.zeros(10))  # too short


def test_flop_estimates_positive():
    assert deriv8_flops((10, 10)) > 0
    assert filter10_flops((10, 10), naxes=3) == 3 * filter10_flops((10, 10))


# ----------------------------------------------------------------- Runge-Kutta
def test_rk_exact_exponential_decay():
    y = RK4_CK5.integrate(lambda t, y: -y, 0.0, np.array([1.0]), 0.01, 100)
    assert y[0] == pytest.approx(np.exp(-1.0), rel=1e-8)


def test_rk_fourth_order_convergence():
    """Halving dt should cut the error ~16x for a 4th-order scheme."""

    def f(t, y):
        return np.array([np.cos(t) * y[0]])

    exact = np.exp(np.sin(1.0))
    errs = []
    for nsteps in (20, 40):
        y = RK4_CK5.integrate(f, 0.0, np.array([1.0]), 1.0 / nsteps, nsteps)
        errs.append(abs(y[0] - exact))
    order = np.log2(errs[0] / errs[1])
    assert 3.7 < order < 4.6


def test_rk_oscillator_energy_nearly_conserved():
    def f(t, y):
        return np.array([y[1], -y[0]])

    y = RK4_CK5.integrate(f, 0.0, np.array([1.0, 0.0]), 0.05, 200)
    energy = y[0] ** 2 + y[1] ** 2
    assert energy == pytest.approx(1.0, abs=1e-6)


def test_rk_stage_count():
    assert RK4_CK5.stages == 5
    assert RK4_CK5.order == 4


def test_rk_coefficient_validation():
    with pytest.raises(ValueError):
        LowStorageRK("bad", a=(0.0, 1.0), b=(1.0,), c=(0.0,), order=1)
    with pytest.raises(ValueError):
        LowStorageRK("bad", a=(1.0,), b=(1.0,), c=(0.0,), order=1)


def test_rk_negative_steps_rejected():
    with pytest.raises(ValueError):
        RK4_CK5.integrate(lambda t, y: y, 0.0, np.array([1.0]), 0.1, -1)
