"""Tests for block transpose and blocked LU."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.kernels import block_transpose, lu_factor, lu_flops, lu_solve, ptrans_bytes


def test_block_transpose_matches_T():
    rng = np.random.default_rng(0)
    a = rng.standard_normal((37, 53))
    assert np.array_equal(block_transpose(a, block=8), a.T)


def test_block_transpose_validation():
    with pytest.raises(ValueError):
        block_transpose(np.zeros(5))


def test_ptrans_bytes():
    assert ptrans_bytes(1000) == 1000 * 1000 * 8
    with pytest.raises(ValueError):
        ptrans_bytes(-1)


def test_lu_factor_solve_real():
    rng = np.random.default_rng(1)
    a = rng.standard_normal((60, 60)) + 60 * np.eye(60)
    x_true = rng.standard_normal(60)
    b = a @ x_true
    lu, piv = lu_factor(a, block=16)
    x = lu_solve(lu, piv, b)
    assert np.allclose(x, x_true, atol=1e-8)


def test_lu_factor_solve_complex():
    """AORSA's system is complex-valued (paper §6.5)."""
    rng = np.random.default_rng(2)
    a = (
        rng.standard_normal((40, 40))
        + 1j * rng.standard_normal((40, 40))
        + 40 * np.eye(40)
    )
    x_true = rng.standard_normal(40) + 1j * rng.standard_normal(40)
    b = a @ x_true
    lu, piv = lu_factor(a, block=8)
    x = lu_solve(lu, piv, b)
    assert np.allclose(x, x_true, atol=1e-8)


def test_lu_requires_pivoting():
    # Zero on the diagonal: only correct with row pivoting.
    a = np.array([[0.0, 1.0], [1.0, 0.0]])
    lu, piv = lu_factor(a)
    x = lu_solve(lu, piv, np.array([2.0, 3.0]))
    assert np.allclose(x, [3.0, 2.0])


def test_lu_matches_scipy():
    from scipy.linalg import lu_factor as sp_lu, lu_solve as sp_solve

    rng = np.random.default_rng(3)
    a = rng.standard_normal((30, 30)) + 30 * np.eye(30)
    b = rng.standard_normal(30)
    lu, piv = lu_factor(a, block=7)
    x_ours = lu_solve(lu, piv, b)
    x_ref = sp_solve(sp_lu(a), b)
    assert np.allclose(x_ours, x_ref, atol=1e-9)


def test_lu_singular_detected():
    with pytest.raises(np.linalg.LinAlgError):
        lu_factor(np.zeros((4, 4)))


def test_lu_nonsquare_rejected():
    with pytest.raises(ValueError):
        lu_factor(np.zeros((3, 4)))


def test_lu_flops():
    assert lu_flops(100) == pytest.approx((2 / 3) * 1e6 + 2 * 1e4)
    assert lu_flops(100, complex_valued=True) == pytest.approx(4 * lu_flops(100))
    with pytest.raises(ValueError):
        lu_flops(-2)


@settings(max_examples=15, deadline=None)
@given(n=st.integers(2, 40), block=st.integers(1, 16), seed=st.integers(0, 50))
def test_lu_reconstruction_property(n, block, seed):
    """P·A == L·U for random well-conditioned matrices."""
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((n, n)) + n * np.eye(n)
    lu, piv = lu_factor(a, block=block)
    lower = np.tril(lu, -1) + np.eye(n)
    upper = np.triu(lu)
    assert np.allclose(lower @ upper, a[np.asarray(piv, dtype=np.intp)], atol=1e-8)
