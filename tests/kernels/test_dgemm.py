"""Tests for the blocked DGEMM kernel."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.kernels import dgemm, dgemm_flops


def test_matches_numpy_square():
    rng = np.random.default_rng(0)
    a = rng.standard_normal((50, 50))
    b = rng.standard_normal((50, 50))
    assert np.allclose(dgemm(a, b, block=16), a @ b)


def test_matches_numpy_rectangular():
    rng = np.random.default_rng(1)
    a = rng.standard_normal((33, 47))
    b = rng.standard_normal((47, 21))
    assert np.allclose(dgemm(a, b, block=8), a @ b)


def test_alpha_beta_accumulate():
    rng = np.random.default_rng(2)
    a = rng.standard_normal((10, 10))
    b = rng.standard_normal((10, 10))
    c = rng.standard_normal((10, 10))
    out = dgemm(a, b, c=c, alpha=2.0, beta=0.5, block=4)
    assert np.allclose(out, 2.0 * a @ b + 0.5 * c)


def test_complex_support():
    rng = np.random.default_rng(3)
    a = rng.standard_normal((12, 12)) + 1j * rng.standard_normal((12, 12))
    b = rng.standard_normal((12, 12)) + 1j * rng.standard_normal((12, 12))
    assert np.allclose(dgemm(a, b, block=5), a @ b)


def test_shape_validation():
    with pytest.raises(ValueError):
        dgemm(np.zeros((3, 4)), np.zeros((5, 3)))
    with pytest.raises(ValueError):
        dgemm(np.zeros((3, 4)), np.zeros((4, 3)), c=np.zeros((2, 2)))


def test_flops_count():
    assert dgemm_flops(10, 20, 30) == 2 * 10 * 20 * 30
    with pytest.raises(ValueError):
        dgemm_flops(-1, 2, 3)


@settings(max_examples=25, deadline=None)
@given(
    m=st.integers(1, 24),
    n=st.integers(1, 24),
    k=st.integers(1, 24),
    block=st.integers(1, 9),
)
def test_blocked_equals_reference_property(m, n, k, block):
    rng = np.random.default_rng(m * 1000 + n * 100 + k)
    a = rng.standard_normal((m, k))
    b = rng.standard_normal((k, n))
    assert np.allclose(dgemm(a, b, block=block), a @ b)
