"""Tests for the CG solvers — the POP barotropic engine."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.kernels import chronopoulos_gear_cg, conjugate_gradient


def make_spd(n, seed=0):
    rng = np.random.default_rng(seed)
    m = rng.standard_normal((n, n))
    return m @ m.T + n * np.eye(n)


def test_cg_solves_spd_system():
    a = make_spd(40)
    x_true = np.arange(40, dtype=float)
    b = a @ x_true
    res = conjugate_gradient(lambda v: a @ v, b, tol=1e-12)
    assert res.converged
    assert np.allclose(res.x, x_true, atol=1e-6)


def test_cg_identity_converges_in_one_iteration():
    b = np.ones(10)
    res = conjugate_gradient(lambda v: v, b)
    assert res.iterations == 1
    assert np.allclose(res.x, b)


def test_cg_reduction_count_is_two_per_iteration():
    a = make_spd(30, seed=1)
    b = np.ones(30)
    res = conjugate_gradient(lambda v: a @ v, b, tol=1e-10)
    # 2 setup reductions + 2 per iteration.
    assert res.reduction_calls == 2 + 2 * res.iterations


def test_cgcg_solves_same_system():
    a = make_spd(40, seed=2)
    x_true = np.linspace(-1, 1, 40)
    b = a @ x_true
    res = chronopoulos_gear_cg(lambda v: a @ v, b, tol=1e-12)
    assert res.converged
    assert np.allclose(res.x, x_true, atol=1e-6)


def test_cgcg_halves_reductions():
    """The paper's headline algorithmic claim (§6.2): C-G needs half the
    Allreduce calls of standard CG."""
    a = make_spd(50, seed=3)
    b = np.ones(50)
    std = conjugate_gradient(lambda v: a @ v, b, tol=1e-10)
    cg2 = chronopoulos_gear_cg(lambda v: a @ v, b, tol=1e-10)
    assert std.converged and cg2.converged
    # One reduction per iteration vs two (setup excluded).
    per_iter_std = (std.reduction_calls - 2) / std.iterations
    per_iter_cg2 = (cg2.reduction_calls - 1) / cg2.iterations
    assert per_iter_std == pytest.approx(2.0)
    assert per_iter_cg2 == pytest.approx(1.0)


def test_both_variants_agree_on_iterates():
    """In exact arithmetic the two algorithms are identical; numerically
    they should converge in comparable iteration counts."""
    a = make_spd(60, seed=4)
    b = np.sin(np.arange(60.0))
    std = conjugate_gradient(lambda v: a @ v, b, tol=1e-10)
    cg2 = chronopoulos_gear_cg(lambda v: a @ v, b, tol=1e-10)
    assert abs(std.iterations - cg2.iterations) <= 2
    assert np.allclose(std.x, cg2.x, atol=1e-6)


def test_x0_initial_guess_respected():
    a = make_spd(20, seed=5)
    x_true = np.ones(20)
    b = a @ x_true
    res = conjugate_gradient(lambda v: a @ v, b, x0=x_true.copy(), tol=1e-12)
    assert res.iterations == 0
    assert res.converged


def test_max_iter_cap():
    a = make_spd(80, seed=6)
    b = np.ones(80)
    res = conjugate_gradient(lambda v: a @ v, b, tol=1e-14, max_iter=3)
    assert res.iterations == 3
    assert not res.converged


def test_custom_dot_many_is_used():
    calls = []

    def dot_many(pairs):
        calls.append(len(pairs))
        return [float(np.dot(u, v)) for u, v in pairs]

    a = make_spd(10, seed=7)
    chronopoulos_gear_cg(lambda v: a @ v, np.ones(10), dot_many=dot_many, tol=1e-10)
    # The C-G fused reduction carries 2 values per iteration.
    assert calls[0] == 3  # setup: gamma, delta, bb
    assert all(c == 2 for c in calls[1:])


@settings(max_examples=15, deadline=None)
@given(n=st.integers(5, 40), seed=st.integers(0, 100))
def test_cg_residual_property(n, seed):
    """CG's returned residual norm matches ||b - A x|| to solver accuracy."""
    a = make_spd(n, seed=seed)
    rng = np.random.default_rng(seed)
    b = rng.standard_normal(n)
    res = conjugate_gradient(lambda v: a @ v, b, tol=1e-10, max_iter=500)
    true_resid = np.linalg.norm(b - a @ res.x)
    assert true_resid == pytest.approx(res.residual_norm, abs=1e-6 * n)
