"""Tests for the Lustre read path and mixed read/write workloads."""

import pytest

from repro.lustre import LustreClient, LustreConfig, LustreFilesystem
from repro.simengine import Simulator


def run_scenario(gen_fn, config=None):
    sim = Simulator()
    fs = LustreFilesystem(sim, config or LustreConfig(num_oss=4, osts_per_oss=2))
    out = {}

    def main():
        out["result"] = yield from gen_fn(fs)

    sim.spawn(main())
    sim.run()
    return sim, fs, out.get("result")


def test_read_after_write_tracks_client_counters():
    def scenario(fs):
        client = LustreClient(fs, 0)
        f = yield from client.create("data", stripe_count=2)
        yield from client.write(f, 0, 2 << 20)
        t_read = yield from client.read(f, 0, 1 << 20)
        return client, t_read

    _, _, (client, t_read) = run_scenario(scenario)
    assert client.bytes_written == 2 << 20
    assert client.bytes_read == 1 << 20
    assert t_read > 0


def test_read_and_write_contend_for_the_same_oss():
    """A reader and a writer hitting one stripe serialize at its OSS."""

    def solo(fs):
        c = LustreClient(fs, 0)
        f = yield from c.create("a", stripe_count=1)
        t = yield from c.write(f, 0, 8 << 20)
        return t

    _, _, t_solo = run_scenario(solo)

    def contended(fs):
        c1, c2 = LustreClient(fs, 0), LustreClient(fs, 1)
        f = yield from c1.create("a", stripe_count=1)
        from repro.simengine import AllOf

        p1 = fs.sim.spawn(c1.write(f, 0, 8 << 20))
        p2 = fs.sim.spawn(c2.read(f, 0, 8 << 20))
        times = yield AllOf([p1, p2])
        return max(times)

    _, _, t_both = run_scenario(contended)
    assert t_both == pytest.approx(2 * t_solo, rel=0.05)


def test_offset_reads_hit_the_right_osts():
    def scenario(fs):
        c = LustreClient(fs, 0)
        f = yield from c.create("a", stripe_count=4)
        yield from c.write(f, 0, 4 << 20)
        before = list(fs.oss_bytes)
        # Read exactly the second 1 MiB stripe: one OST, hence one OSS.
        yield from c.read(f, 1 << 20, 1 << 20)
        delta = [b - a for a, b in zip(before, fs.oss_bytes)]
        return delta

    _, fs, delta = run_scenario(scenario)
    assert sum(1 for d in delta if d > 0) == 1
    assert sum(delta) == 1 << 20


def test_zero_byte_transfer_is_free():
    def scenario(fs):
        c = LustreClient(fs, 0)
        f = yield from c.create("a")
        t = yield from c.write(f, 0, 0)
        return t

    _, _, t = run_scenario(scenario)
    assert t == 0.0


def test_negative_transfer_rejected():
    def scenario(fs):
        c = LustreClient(fs, 0)
        f = yield from c.create("a")
        yield from c.write(f, 0, -1)

    with pytest.raises(ValueError):
        run_scenario(scenario)
