"""Tests for the Lustre simulator: striping, MDS serialization, IOR."""

import pytest
from hypothesis import given, strategies as st

from repro.lustre import (
    IORBenchmark,
    LustreClient,
    LustreConfig,
    LustreFilesystem,
    StripeLayout,
)
from repro.simengine import Simulator


# ------------------------------------------------------------------ striping
def test_stripe_layout_round_robins():
    layout = StripeLayout(stripe_count=4, stripe_size=100, first_ost=0, total_osts=8)
    assert layout.ost_of_offset(0) == 0
    assert layout.ost_of_offset(99) == 0
    assert layout.ost_of_offset(100) == 1
    assert layout.ost_of_offset(399) == 3
    assert layout.ost_of_offset(400) == 0  # wraps around the stripe set


def test_stripe_chunks_cover_range():
    layout = StripeLayout(stripe_count=3, stripe_size=64, first_ost=1, total_osts=4)
    chunks = layout.chunks(offset=10, nbytes=300)
    assert sum(c for _, c in chunks) == 300
    assert all(0 <= ost < 4 for ost, _ in chunks)


def test_stripe_bytes_per_ost_balanced_for_aligned_write():
    layout = StripeLayout(stripe_count=4, stripe_size=1 << 20, first_ost=0, total_osts=4)
    per = layout.bytes_per_ost(4 << 20)
    assert per == [1 << 20] * 4


def test_stripe_validation():
    with pytest.raises(ValueError):
        StripeLayout(0, 100, 0, 4)
    with pytest.raises(ValueError):
        StripeLayout(5, 100, 0, 4)
    with pytest.raises(ValueError):
        StripeLayout(2, 0, 0, 4)
    with pytest.raises(ValueError):
        StripeLayout(2, 100, 4, 4)
    layout = StripeLayout(2, 100, 0, 4)
    with pytest.raises(ValueError):
        layout.ost_of_offset(-1)
    with pytest.raises(ValueError):
        layout.chunks(0, -1)


@given(
    count=st.integers(1, 8),
    size=st.integers(1, 4096),
    nbytes=st.integers(0, 100_000),
)
def test_stripe_chunks_conserve_bytes_property(count, size, nbytes):
    layout = StripeLayout(count, size, 0, 8)
    assert sum(c for _, c in layout.chunks(0, nbytes)) == nbytes


# ------------------------------------------------------------- filesystem
def run_process(gen_fn):
    sim = Simulator()
    fs = LustreFilesystem(sim, LustreConfig(num_oss=4, osts_per_oss=2))
    out = {}

    def main():
        out["result"] = yield from gen_fn(fs)

    sim.spawn(main())
    sim.run()
    return sim, fs, out.get("result")


def test_create_and_open_cost_mds_ops():
    def scenario(fs):
        yield from fs.create("a")
        yield from fs.open("a")
        return fs.mds_ops

    sim, fs, ops = run_process(scenario)
    assert ops == 2
    assert sim.now == pytest.approx(2 * 300e-6)


def test_create_duplicate_rejected():
    def scenario(fs):
        yield from fs.create("a")
        yield from fs.create("a")

    with pytest.raises(FileExistsError):
        run_process(scenario)


def test_open_missing_rejected():
    def scenario(fs):
        yield from fs.open("nope")

    with pytest.raises(FileNotFoundError):
        run_process(scenario)


def test_write_updates_size_and_oss_bytes():
    def scenario(fs):
        f = yield from fs.create("a", stripe_count=2)
        yield from fs.transfer(f, 0, 4 << 20, write=True)
        return f.size

    sim, fs, size = run_process(scenario)
    assert size == 4 << 20
    assert sum(fs.oss_bytes) == 4 << 20


def test_write_time_scales_with_size():
    def scenario_of(nbytes):
        def scenario(fs):
            f = yield from fs.create("a", stripe_count=1)
            t = yield from LustreClient(fs, 0).write(f, 0, nbytes)
            return t

        return scenario

    _, _, t_small = run_process(scenario_of(1 << 20))
    _, _, t_large = run_process(scenario_of(8 << 20))
    assert t_large > t_small


def test_striping_speeds_up_large_write():
    """A stripe-count-4 write engages 4 OSSes concurrently."""

    def scenario_of(count):
        def scenario(fs):
            f = yield from fs.create("a", stripe_count=count)
            t = yield from LustreClient(fs, 0).write(f, 0, 16 << 20)
            return t

        return scenario

    _, _, t1 = run_process(scenario_of(1))
    _, _, t4 = run_process(scenario_of(4))
    assert t4 < t1 / 2


# ------------------------------------------------------------------- IOR
def test_ior_validation():
    bench = IORBenchmark()
    with pytest.raises(ValueError):
        bench.run(0)
    with pytest.raises(ValueError):
        bench.run(2, bytes_per_client=0)
    with pytest.raises(ValueError):
        bench.run(2, pattern="strided")


def test_ior_bandwidth_saturates_at_oss_limit():
    config = LustreConfig(num_oss=4, osts_per_oss=4, oss_bandwidth_GBs=0.35)  # simlint: ignore[SL303] — test vector
    bench = IORBenchmark(config)
    r = bench.run(num_clients=16, bytes_per_client=32 << 20)
    assert r.aggregate_GBs <= config.peak_bandwidth_GBs * 1.01
    assert r.aggregate_GBs > config.peak_bandwidth_GBs * 0.6


def test_ior_bandwidth_scales_with_oss_count():
    small = IORBenchmark(LustreConfig(num_oss=2)).run(16, 16 << 20)
    big = IORBenchmark(LustreConfig(num_oss=8)).run(16, 16 << 20)
    assert big.aggregate_GBs > 2 * small.aggregate_GBs


def test_ior_mds_serializes_file_per_process_creates():
    """Metadata time grows ~linearly with clients: the single-MDS
    bottleneck the paper warns about."""
    bench = IORBenchmark(LustreConfig(num_oss=8))
    meta = [
        bench.run(n, 1 << 20, pattern="file-per-process").metadata_s
        for n in (4, 16, 64)
    ]
    assert meta[1] > 3 * meta[0]
    assert meta[2] > 3 * meta[1]


def test_ior_shared_file_avoids_metadata_storm():
    bench = IORBenchmark(LustreConfig(num_oss=8))
    fpp = bench.run(64, 1 << 20, pattern="file-per-process")
    ssf = bench.run(64, 1 << 20, pattern="single-shared-file")
    assert ssf.metadata_s < fpp.metadata_s / 10
