"""Unit tests for the tracing core: spans, counters, installation."""
# Literal durations are trace test vectors, not model constants.
# simlint: ignore-file[SL302]

import pytest

from repro.obs import Tracer, current_tracer, install, installed, uninstall
from repro.obs.tracer import Counter
from repro.simengine import Delay, Simulator


# ------------------------------------------------------------------ counters
def test_sampled_counter_series_in_time_order():
    c = Counter("q")
    c.record(2.0, 5.0)
    c.record(1.0, 3.0)
    assert c.mode == Counter.SAMPLED
    assert c.series() == [(1.0, 3.0), (2.0, 5.0)]
    assert c.total == 5.0  # last value in time order


def test_accumulating_counter_integrates_out_of_order_deltas():
    c = Counter("bytes")
    # A transfer posting its completion in the future, then an earlier one.
    c.add(3.0, 10.0)
    c.add(1.0, 4.0)
    assert c.mode == Counter.ACCUMULATING
    assert c.series() == [(1.0, 4.0), (3.0, 14.0)]
    assert c.total == 14.0


def test_accumulating_ties_keep_write_order():
    c = Counter("bw")
    c.add(1.0, 2.0)
    c.add(1.0, -2.0)
    assert c.series() == [(1.0, 2.0), (1.0, 0.0)]


def test_counter_totals_with_prefix_filter():
    t = Tracer()
    t.add("runner.cache.hits", 0.0, 1.0)
    t.add("runner.cache.hits", 1.0, 1.0)
    t.add("runner.cache.misses", 2.0, 1.0)
    t.record("runner.exp[fig05].wall_s", 0.0, 0.25)
    t.record("net.link.bytes", 0.0, 64.0)
    totals = t.counter_totals("runner.cache.")
    assert totals == {
        "runner.cache.hits": 2.0,
        "runner.cache.misses": 1.0,
    }
    assert t.counter_totals()["net.link.bytes"] == 64.0
    assert list(t.counter_totals()) == sorted(t.counter_totals())


def test_counter_modes_cannot_mix():
    c = Counter("x")
    c.record(0.0, 1.0)
    with pytest.raises(ValueError, match="sampled"):
        c.add(1.0, 1.0)


def test_empty_counter_total_is_zero():
    assert Counter("x").total == 0.0


# ------------------------------------------------------------------ spans
def test_begin_end_complete():
    tr = Tracer()
    s = tr.begin("rank0", "mpi.send", 1.0, bytes=8)
    assert s.t1 is None and s.duration_s == 0.0
    tr.end(s, 2.5, ok=True)
    assert s.duration_s == 1.5
    assert s.args == {"bytes": 8, "ok": True}
    s2 = tr.complete("rank0", "mpi.recv", 3.0, 4.0)
    assert s2.duration_s == 1.0
    assert len(tr.spans) == 2


def test_span_end_validation():
    tr = Tracer()
    s = tr.begin("t", "a", 5.0)
    with pytest.raises(ValueError, match="before start"):
        tr.end(s, 4.0)
    tr.end(s, 6.0)
    with pytest.raises(ValueError, match="already ended"):
        tr.end(s, 7.0)


def test_span_context_manager_uses_clock():
    tr = Tracer()
    now = [1.0]
    with tr.span("t", "block", lambda: now[0]):
        now[0] = 3.0
    (s,) = tr.spans
    assert (s.t0, s.t1) == (1.0, 3.0)


def test_close_open_spans_and_end_time():
    tr = Tracer()
    tr.begin("t", "open", 1.0)
    tr.complete("t", "done", 0.0, 4.0)
    tr.add("c", 6.0, 1.0)
    assert tr.end_time == 6.0
    assert tr.close_open_spans(tr.end_time) == 1
    assert all(s.t1 is not None for s in tr.spans)


# ------------------------------------------------------------------ install
def test_installed_context_restores_previous():
    assert current_tracer() is None
    outer = install(Tracer())
    try:
        with installed() as inner:
            assert current_tracer() is inner
            assert inner is not outer
        assert current_tracer() is outer
    finally:
        uninstall()
    assert current_tracer() is None


def test_simulator_picks_up_installed_tracer():
    with installed() as tracer:
        sim = Simulator()
        assert sim.tracer is tracer

        def proc():
            yield Delay(1.0)

        sim.spawn(proc(), name="p")
        sim.run()
    assert [s.name for s in tracer.spans] == ["proc.lifetime"]
    assert tracer.spans[0].track == "proc/p"
    assert tracer.spans[0].t1 == 1.0
    # Outside the block new simulators are untraced again.
    assert Simulator().tracer is None


def test_explicit_tracer_beats_installed():
    mine = Tracer()
    with installed():
        assert Simulator(tracer=mine).tracer is mine


def test_wait_spans_opt_in():
    tracer = Tracer(wait_spans=True)
    sim = Simulator(tracer=tracer)

    def proc():
        yield Delay(2.0)

    sim.spawn(proc(), name="w")
    sim.run()
    waits = [s for s in tracer.spans if s.name.startswith("wait:")]
    assert len(waits) == 1
    assert waits[0].t0 == 0.0 and waits[0].t1 == 2.0
    # Off by default: the same run without the flag records no waits.
    quiet = Tracer()
    sim2 = Simulator(tracer=quiet)
    sim2.spawn(proc(), name="w")
    sim2.run()
    assert not [s for s in quiet.spans if s.name.startswith("wait:")]
