"""Cross-layer integration: tracer data agrees with the other profilers.

The acceptance bar for the observability work: a traced run's per-op MPI
span totals must match the mpiP-style :class:`ProfiledComm` aggregates,
and the engine/memory instrumentation must carry physically sensible
values.
"""

import math

import pytest

from repro.machine.configs import PROFILES, xt4
from repro.mpi.job import MPIJob
from repro.mpi.profiler import profiled_job_run
from repro.obs import Tracer
from repro.simengine import Resource, Simulator


def _physics_main(comm):
    for _ in range(2):
        yield from comm.compute(5.0e7, profile="dgemm")
        yield from comm.stream(1.0e6)
        yield from comm.allreduce(1.0)
        right = (comm.rank + 1) % comm.size
        left = (comm.rank - 1) % comm.size
        yield from comm.sendrecv(b"x" * 4096, dest=right, source=left, tag=0)
    yield from comm.barrier()
    return comm.wtime()


@pytest.fixture(scope="module")
def traced_run():
    tracer = Tracer()
    job = MPIJob(xt4("VN"), 8, tracer=tracer)
    result, profiles = profiled_job_run(job, _physics_main)
    return tracer, job, result, profiles


def test_mpi_span_totals_match_profiledcomm(traced_run):
    tracer, _job, _result, profiles = traced_run
    # Tracer side: per-(rank, op) span totals.
    totals = {}
    for span in tracer.spans:
        if span.name.startswith("mpi.") and span.track.startswith("rank"):
            key = (int(span.track[4:]), span.name[4:])
            totals[key] = totals.get(key, 0.0) + span.duration_s
    assert totals, "no mpi.* spans recorded"
    # Profiler side: OpStats (isend/irecv are counted but not timed).
    for rank, prof in profiles.items():
        for op, stats in prof.ops.items():
            if op in ("isend", "irecv"):
                continue
            assert math.isclose(
                totals.get((rank, op), 0.0), stats.time_s, rel_tol=1e-12,
                abs_tol=1e-18,
            ), f"rank {rank} op {op}"


def test_compute_and_stream_spans_on_rank_tracks(traced_run):
    tracer, job, _result, _profiles = traced_run
    names = {s.name for s in tracer.spans if s.track == "rank0"}
    assert "compute.dgemm" in names
    assert "stream" in names
    compute = [s for s in tracer.spans
               if s.track == "rank0" and s.name == "compute.dgemm"]
    expected = job.compute_time_s(0, 5.0e7, "dgemm")
    assert compute[0].duration_s == pytest.approx(expected, rel=1e-12)


def test_memory_counters_are_physical(traced_run):
    tracer, job, result, _profiles = traced_run
    stall = tracer.counters.get("machine.core[rank0].stall_s")
    assert stall is not None
    # Cumulative stall time is positive and bounded by the run length.
    assert 0.0 < stall.total <= result.elapsed_s
    mem = [c for n, c in tracer.counters.items()
           if n.startswith("machine.mem[")]
    assert mem, "no memory-controller counters"
    for counter in mem:
        series = counter.series()
        # Accumulating +rate/-rate pairs: starts and ends at zero draw.
        assert series[-1][1] == pytest.approx(0.0, abs=1e-9)
        peak = max(v for _t, v in series)
        assert 0.0 < peak <= job.machine.node.memory.achievable_bw_GBs * 1.001


def test_stall_fraction_orders_profiles_by_memory_intensity():
    from repro.machine.processor import CoreModel

    core = CoreModel(xt4("VN"))
    f_dgemm = core.memory.stall_fraction(PROFILES["dgemm"], core.peak_gflops, 2)
    f_fft = core.memory.stall_fraction(PROFILES["fft"], core.peak_gflops, 2)
    assert 0.0 <= f_dgemm < 1.0
    # FFT moves 100x the bytes per flop: it must stall far more than DGEMM.
    assert f_fft > f_dgemm


def test_resource_queue_counters_track_contention():
    tracer = Tracer()
    sim = Simulator(tracer=tracer)
    res = Resource(sim, 1, name="gate")

    def user(hold):
        yield res.request()  # simlint: ignore[SL501] — tracer sees the bare hold on purpose
        try:
            from repro.simengine import Delay

            yield Delay(hold)
        finally:
            res.release()

    for i in range(3):
        sim.spawn(user(1.0), name=f"u{i}")
    sim.run()
    depth = tracer.counters["engine.resource[gate].queue_depth"].series()
    assert max(v for _t, v in depth) == 2.0  # two waiters behind the holder
    holds = [s for s in tracer.spans if s.name == "res.hold"]
    acquires = [s for s in tracer.spans if s.name == "res.acquire"]
    assert len(holds) == 3 and len(acquires) == 2
    assert sum(s.duration_s for s in holds) == pytest.approx(3.0)
    # The last waiter queued at t=0 and was granted at t=2.
    assert max(s.duration_s for s in acquires) == pytest.approx(2.0)
