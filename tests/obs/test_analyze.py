"""Analysis-layer tests: self time, counter stats, hotspots, diffs."""

import pytest

from repro.obs import TraceData, Tracer
from repro.obs.analyze import (
    counter_stats,
    counter_summary_rows,
    diff_counter_rows,
    diff_span_rows,
    link_hotspot_rows,
    span_aggregate,
    span_self_times,
    span_summary_rows,
)
from repro.obs.tracer import Span


def _span(track, name, t0, t1):
    return Span(track=track, name=name, t0=t0, t1=t1)


# ------------------------------------------------------------------ self time
def test_self_time_subtracts_direct_children():
    spans = [
        _span("r0", "outer", 0.0, 10.0),
        _span("r0", "child", 2.0, 5.0),
        _span("r0", "grandchild", 3.0, 4.0),
        _span("r0", "child2", 6.0, 8.0),
    ]
    self_of = {s.name: t for s, t in span_self_times(spans)}
    # outer: 10 - (3 + 2) direct children; grandchild charged to child only.
    assert self_of["outer"] == pytest.approx(5.0)
    assert self_of["child"] == pytest.approx(2.0)
    assert self_of["grandchild"] == pytest.approx(1.0)
    assert self_of["child2"] == pytest.approx(2.0)


def test_self_time_tracks_are_independent():
    spans = [
        _span("a", "x", 0.0, 4.0),
        _span("b", "y", 1.0, 3.0),  # overlaps x but on another track
    ]
    self_of = {s.name: t for s, t in span_self_times(spans)}
    assert self_of == {"x": pytest.approx(4.0), "y": pytest.approx(2.0)}


def test_self_time_sequential_spans_do_not_nest():
    spans = [
        _span("r", "a", 0.0, 1.0),
        _span("r", "b", 1.0, 2.0),  # starts exactly when a ends
    ]
    self_of = {s.name: t for s, t in span_self_times(spans)}
    assert self_of["a"] == pytest.approx(1.0)
    assert self_of["b"] == pytest.approx(1.0)


def test_span_aggregate_and_rows():
    spans = [
        _span("r", "op", 0.0, 2.0),
        _span("r", "op", 3.0, 4.0),
    ]
    agg = span_aggregate(spans)
    assert agg["op"]["count"] == 2
    assert agg["op"]["total_s"] == pytest.approx(3.0)
    assert agg["op"]["max_s"] == pytest.approx(2.0)
    rows = span_summary_rows(TraceData(spans=spans), top=1)
    assert rows[0]["span"] == "op" and rows[0]["count"] == 2


# ------------------------------------------------------------------ counters
def test_counter_stats_p99_and_mean():
    series = [(float(i), float(i)) for i in range(100)]  # values 0..99
    s = counter_stats(series)
    assert s["n"] == 100
    assert s["min"] == 0.0 and s["max"] == 99.0
    assert s["mean"] == pytest.approx(49.5)
    assert s["p99"] == 98.0  # ceil(0.99*100)-1 = index 98
    assert s["last"] == 99.0
    assert counter_stats([])["n"] == 0


def test_counter_summary_prefix_filter():
    trace = TraceData(counters={
        "net.link[a].bytes": [(0.0, 1.0)],
        "machine.core[rank0].stall_s": [(0.0, 2.0)],
    })
    rows = counter_summary_rows(trace, prefix="net.")
    assert [r["counter"] for r in rows] == ["net.link[a].bytes"]


# ------------------------------------------------------------------ hotspots
def test_link_hotspot_rows_rank_and_utilization():
    trace = TraceData(counters={
        "net.link[0,0,0.+x].bytes": [(1.0, 100.0), (2.0, 300.0)],
        "net.link[0,0,0.+x].busy_s": [(2.0, 1.0)],
        "net.link[1,0,0.+y].bytes": [(1.0, 500.0)],
        "net.nic[0].tx_bytes": [(1.0, 9999.0)],  # not a link: excluded
    })
    rows = link_hotspot_rows(trace, top=5)
    assert [r["link"] for r in rows] == ["1,0,0.+y", "0,0,0.+x"]
    # end_time = 2.0s, busy 1.0s -> 50% utilization.
    assert rows[1]["util_%"] == pytest.approx(50.0)


# ------------------------------------------------------------------ diffs
def test_diff_rows_sorted_by_absolute_delta():
    a = TraceData(spans=[_span("r", "allreduce", 0.0, 1.0),
                         _span("r", "send", 2.0, 2.1)])
    b = TraceData(spans=[_span("r", "allreduce", 0.0, 3.0),
                         _span("r", "send", 4.0, 4.2)])
    rows = diff_span_rows(a, b)
    assert rows[0]["span"] == "allreduce"
    assert rows[0]["delta_ms"] == pytest.approx(2000.0)
    assert rows[0]["b/a"] == pytest.approx(3.0)
    assert rows[1]["span"] == "send"

    ca = TraceData(counters={"c": [(0.0, 1.0)]})
    cb = TraceData(counters={"c": [(0.0, 5.0)], "d": [(0.0, 2.0)]})
    crows = diff_counter_rows(ca, cb)
    assert crows[0]["counter"] == "c" and crows[0]["delta"] == pytest.approx(4.0)
    assert crows[1]["counter"] == "d" and crows[1]["a_last"] == 0.0


def test_diff_span_missing_on_one_side():
    a = TraceData(spans=[_span("r", "only_a", 0.0, 1.0)])
    b = TraceData(spans=[])
    rows = diff_span_rows(a, b)
    assert rows[0]["span"] == "only_a"
    assert rows[0]["b_ms"] == 0.0 and rows[0]["delta_ms"] == pytest.approx(-1000.0)
