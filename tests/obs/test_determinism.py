"""Trace determinism: identical seeded runs serialize byte-for-byte."""

from repro.machine.configs import xt4
from repro.mpi.job import MPIJob
from repro.obs import Tracer, dumps_chrome_trace, dumps_jsonl


def _rank_main(comm):
    """An 8-rank neighbour ping-pong with a closing allreduce."""
    peer = comm.rank ^ 1
    for i in range(3):
        if comm.rank < peer:
            yield from comm.send(b"", dest=peer, tag=i, nbytes=512)
            yield from comm.recv(source=peer)
        else:
            yield from comm.recv(source=peer)
            yield from comm.send(b"", dest=peer, tag=i, nbytes=512)
    yield from comm.allreduce(1.0)
    return comm.wtime()


def _run(tracer=None) -> float:
    job = MPIJob(xt4("VN"), 8, placement="random", seed=42, tracer=tracer)
    return job.run(_rank_main).elapsed_s


def test_identical_runs_serialize_identically():
    a, b = Tracer(meta={"seed": 42}), Tracer(meta={"seed": 42})
    assert _run(a) == _run(b)
    assert dumps_chrome_trace(a) == dumps_chrome_trace(b)
    assert dumps_jsonl(a) == dumps_jsonl(b)


def test_trace_has_real_content_and_stable_tracks():
    tracer = Tracer()
    _run(tracer)
    tracks = {s.track for s in tracer.spans}
    assert {f"proc/rank{r}" for r in range(8)} <= tracks
    assert any(t.startswith("net/node") for t in tracks)
    assert any(t.startswith("res/") for t in tracks)
    assert any(n.startswith("net.link[") for n in tracer.counters)
    assert any(n.startswith("net.nic[") for n in tracer.counters)
    assert any(n.startswith("engine.resource[") for n in tracer.counters)


def test_tracing_does_not_perturb_the_simulation():
    assert _run() == _run(Tracer())
