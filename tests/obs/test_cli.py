"""End-to-end tests of the ``repro-trace`` CLI over real trace files."""

import pytest

from repro.hpcc import PingPong
from repro.machine.configs import xt4
from repro.obs import Tracer, installed, write_chrome_trace, write_jsonl
from repro.obs.cli import main


@pytest.fixture(scope="module")
def traces(tmp_path_factory):
    """One SN and one VN ping-pong trace on disk (JSON + JSONL)."""
    tmp = tmp_path_factory.mktemp("traces")
    paths = {}
    for mode in ("SN", "VN"):
        with installed(Tracer(meta={"mode": mode})) as tracer:
            PingPong(xt4(mode)).run_des(nbytes=1024, iters=4)
        paths[mode] = write_chrome_trace(tracer, str(tmp / f"{mode}.json"))
        if mode == "SN":
            paths["SN_jsonl"] = write_jsonl(tracer, str(tmp / "SN.jsonl"))
    return paths


def test_summary_renders_tables(traces, capsys):
    assert main(["summary", traces["SN"], "--top", "5"]) == 0
    out = capsys.readouterr().out
    assert "trace summary" in out
    assert "top 5 spans by self time" in out
    assert "proc.lifetime" in out
    assert "net.xfer" in out
    assert "link hotspots" in out
    assert "mode=SN" in out  # metadata surfaced


def test_summary_counter_prefix(traces, capsys):
    assert main(["summary", traces["SN"], "--counters", "net.nic"]) == 0
    out = capsys.readouterr().out
    assert "net.nic[" in out
    assert "engine.resource" not in out.split("counters")[-1]


def test_summary_reads_jsonl(traces, capsys):
    assert main(["summary", traces["SN_jsonl"]]) == 0
    assert "net.xfer" in capsys.readouterr().out


def test_diff_modes(traces, capsys):
    assert main(["diff", traces["SN"], traces["VN"]]) == 0
    out = capsys.readouterr().out
    assert "trace diff (A -> B)" in out
    assert "span totals by |delta|" in out
    assert "counter finals by |delta|" in out
    # summary --diff is the same comparison.
    assert main(["summary", traces["SN"], "--diff", traces["VN"]]) == 0
    assert "trace diff (A -> B)" in capsys.readouterr().out


def test_diff_fail_over_gates_on_counter_drift(traces, capsys):
    # SN vs VN ping-pong traces drift far beyond 0.1%: nonzero exit.
    assert main(["diff", traces["SN"], traces["VN"],
                 "--fail-over", "0.1"]) == 1
    out = capsys.readouterr().out
    assert "FAIL:" in out and "drifted beyond" in out
    # Identical traces never drift: exit 0 at any threshold.
    assert main(["diff", traces["SN"], traces["SN"],
                 "--fail-over", "0.1"]) == 0
    assert "ok: no counter drifted" in capsys.readouterr().out
    # A huge threshold tolerates the SN/VN drift... unless a counter
    # exists on only one side (infinite drift always fails); accept
    # either outcome but require the report to say which.
    code = main(["diff", traces["SN"], traces["VN"], "--fail-over", "1e9"])
    out = capsys.readouterr().out
    assert code in (0, 1)
    assert ("ok: no counter drifted" in out) == (code == 0)


def test_missing_file_is_exit_2(tmp_path, capsys):
    assert main(["summary", str(tmp_path / "nope.json")]) == 2
    assert "repro-trace:" in capsys.readouterr().err


def test_module_alias_runs():
    import subprocess
    import sys

    proc = subprocess.run(
        [sys.executable, "-m", "repro.obs", "--help"],
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0
    assert "repro-trace" in proc.stdout
