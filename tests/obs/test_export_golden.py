"""Exporter golden-file and round-trip tests.

The golden files under ``golden/`` pin the exact serialized bytes of a
hand-built tracer, so any change to the export format (field order,
number formatting, event ordering) fails loudly. Regenerate them by
running this file as a script::

    PYTHONPATH=src python tests/obs/test_export_golden.py
"""

import json
import pathlib

import pytest

from repro.obs import (
    TraceData,
    Tracer,
    dumps_chrome_trace,
    dumps_jsonl,
    load_trace,
    write_chrome_trace,
    write_jsonl,
)

GOLDEN = pathlib.Path(__file__).parent / "golden"


def hand_built_tracer() -> Tracer:
    """A small fixed tracer exercising every exporter feature."""
    tracer = Tracer(meta={"name": "golden", "seed": 7})
    tracer.complete("rank0", "mpi.send", 0.0, 1.5e-6, bytes=8)
    tracer.complete("rank1", "mpi.recv", 0.5e-6, 2.0e-6)
    tracer.complete("rank0", "compute.dgemm", 2.0e-6, 5.0e-6)
    tracer.begin("net/node0", "net.xfer", 1.0e-6, src=0, dst=1)  # left open
    tracer.add("net.link[0,0,0.+x].bytes", 2.0e-6, 8.0)
    tracer.add("net.link[0,0,0.+x].bytes", 1.0e-6, 4.0)  # out of order
    tracer.record("engine.resource[nic_tx[0]].queue_depth", 1.0e-6, 2.0)
    tracer.record("engine.resource[nic_tx[0]].queue_depth", 3.0e-6, 0.0)
    return tracer


def test_chrome_golden():
    expected = (GOLDEN / "hand_built.trace.json").read_text()
    assert dumps_chrome_trace(hand_built_tracer()) == expected


def test_jsonl_golden():
    expected = (GOLDEN / "hand_built.trace.jsonl").read_text()
    assert dumps_jsonl(hand_built_tracer()) == expected


def test_chrome_trace_structure():
    doc = json.loads(dumps_chrome_trace(hand_built_tracer()))
    assert doc["otherData"] == {"name": "golden", "seed": 7}
    events = doc["traceEvents"]
    names = {ev["args"]["name"] for ev in events
             if ev["ph"] == "M" and ev["name"] == "thread_name"}
    assert names == {"rank0", "rank1", "net/node0"}
    # Complete events carry microsecond timestamps.
    sends = [ev for ev in events if ev["ph"] == "X" and ev["name"] == "mpi.send"]
    assert sends[0]["ts"] == 0.0 and sends[0]["dur"] == 1.5
    # The open net.xfer span was closed at the trace end (5 us).
    xfer = [ev for ev in events if ev["name"] == "net.xfer"][0]
    assert xfer["ts"] + xfer["dur"] == pytest.approx(5.0)
    # Counter events are integrated and time-ordered.
    link = [ev["args"]["value"] for ev in events
            if ev["ph"] == "C" and ev["name"].startswith("net.link")]
    assert link == [4.0, 12.0]


def test_round_trip_both_formats(tmp_path):
    tracer = hand_built_tracer()
    reference = TraceData.from_tracer(tracer)
    chrome = write_chrome_trace(tracer, str(tmp_path / "t.json"))
    jsonl = write_jsonl(tracer, str(tmp_path / "t.jsonl"))
    for path in (chrome, jsonl):
        loaded = load_trace(path)
        assert loaded.meta["name"] == "golden"
        assert [(s.track, s.name) for s in loaded.spans] == [
            (s.track, s.name) for s in reference.spans
        ]
        for got, want in zip(loaded.spans, reference.spans):
            assert abs(got.t0 - want.t0) < 1e-15
            assert abs(got.t1 - want.t1) < 1e-15
        assert set(loaded.counters) == set(reference.counters)
        for cname, want_series in reference.counters.items():
            got_series = loaded.counters[cname]
            assert len(got_series) == len(want_series)
            for (gt, gv), (wt, wv) in zip(got_series, want_series):
                assert abs(gt - wt) < 1e-15 and abs(gv - wv) < 1e-12


def test_load_trace_rejects_empty_and_junk(tmp_path):
    empty = tmp_path / "empty.json"
    empty.write_text("")
    with pytest.raises(ValueError, match="empty"):
        load_trace(str(empty))
    junk = tmp_path / "junk.jsonl"
    junk.write_text('{"type":"mystery"}\n')
    with pytest.raises(ValueError, match="unknown JSONL record"):
        load_trace(str(junk))


def _regenerate() -> None:  # pragma: no cover - manual tool
    GOLDEN.mkdir(exist_ok=True)
    (GOLDEN / "hand_built.trace.json").write_text(
        dumps_chrome_trace(hand_built_tracer())
    )
    (GOLDEN / "hand_built.trace.jsonl").write_text(
        dumps_jsonl(hand_built_tracer())
    )
    print(f"regenerated golden files in {GOLDEN}")


if __name__ == "__main__":  # pragma: no cover
    _regenerate()
