"""Guard: the whole tree stays simlint-clean.

Any finding here is either a real simulation-correctness bug (fix it) or
a documented false positive (suppress with ``# simlint: ignore[RULE]`` /
``# simlint: ignore-file[RULE]`` and a justification comment). See
docs/LINT.md. Fixture directories carry deliberate violations and are
excluded by the default path expansion.
"""

from pathlib import Path

from repro.lint import lint_paths

ROOT = Path(__file__).parents[1]
SCOPE = [ROOT / "src", ROOT / "tests", ROOT / "examples", ROOT / "benchmarks"]


def test_tree_is_simlint_clean():
    paths = [p for p in SCOPE if p.is_dir()]
    findings = lint_paths(paths)
    assert not findings, (
        f"{len(findings)} simlint finding(s):\n"
        + "\n".join(str(f) for f in findings)
    )
