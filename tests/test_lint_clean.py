"""Guard: the source tree stays simlint-clean.

Any finding here is either a real simulation-correctness bug (fix it) or
a documented false positive (suppress with ``# simlint: ignore[RULE]``
and a justification comment). See docs/LINT.md.
"""

from pathlib import Path

from repro.lint import lint_paths

SRC = Path(__file__).parents[1] / "src"


def test_source_tree_is_simlint_clean():
    findings = lint_paths([SRC])
    assert not findings, (
        f"{len(findings)} simlint finding(s) in src/:\n"
        + "\n".join(str(f) for f in findings)
    )
