"""Robustness tests: runaway guards, comm duplication, cleanup paths."""

import pytest

from repro.machine import xt4
from repro.mpi import MPIJob
from repro.simengine import Delay, Interrupt, Resource, Simulator


def test_max_events_aborts_runaway_rank_program():
    def main(comm):
        while True:  # forgot the termination condition
            yield from comm.barrier()

    with pytest.raises(RuntimeError, match="max_events"):
        MPIJob(xt4("SN"), 2).run(main, max_events=5000)


def test_dup_isolates_collective_sequences():
    def main(comm):
        lib = yield from comm.dup()
        # Application and "library" interleave collectives freely.
        a = yield from comm.allreduce(1)
        b = yield from lib.allreduce(10)
        c = yield from comm.allreduce(2)
        d = yield from lib.allreduce(20)
        return (a, b, c, d)

    res = MPIJob(xt4("SN"), 4).run(main)
    assert res.returns[0] == (4, 40, 8, 80)


def test_dup_preserves_rank_and_size():
    def main(comm):
        d = yield from comm.dup()
        return (d.rank, d.size, d.world_ranks)

    res = MPIJob(xt4("SN"), 3).run(main)
    assert res.returns[1] == (1, 3, [0, 1, 2])


def test_resource_released_when_holder_interrupted():
    """`Resource.use` releases in its finally block on interrupt."""
    sim = Simulator()
    res = Resource(sim, 1, name="r")
    order = []

    def holder():
        try:
            yield from res.use(100.0)
        except Interrupt:
            order.append(("interrupted", sim.now))

    def waiter():
        yield res.request()  # simlint: ignore[SL501] — interrupt robustness is under test
        order.append(("acquired", sim.now))
        res.release()

    h = sim.spawn(holder())
    sim.spawn(waiter())
    sim.schedule(1.0, lambda: h.interrupt("stop"))
    sim.run()
    assert ("interrupted", 1.0) in order
    assert ("acquired", 1.0) in order  # slot recovered immediately


def test_rank_exception_propagates_with_context():
    def main(comm):
        if comm.rank == 1:
            raise ValueError("rank 1 exploded")
        yield from comm.barrier()

    with pytest.raises(ValueError, match="rank 1 exploded"):
        MPIJob(xt4("SN"), 2).run(main)


def test_store_get_event_resolution_after_cancelled_style_race():
    """Two getters, one item: exactly one resumes; the job deadlock
    detector reports the other."""

    def main(comm):
        if comm.rank == 0:
            yield from comm.send("only-one", dest=1, tag=5)
            return "sent"
        elif comm.rank in (1, 2):
            # Rank 2 waits for a message that never comes.
            got = yield from comm.recv(source=0, tag=5)
            return got
        return None

    with pytest.raises(RuntimeError, match="deadlock"):
        MPIJob(xt4("SN"), 3).run(main)
