"""Tests for collective cost models."""

import pytest
from hypothesis import given, strategies as st

from repro.machine import xt3, xt4
from repro.mpi import CollectiveCostModel
from repro.network import NetworkModel


def costs(machine, p):
    return CollectiveCostModel.for_machine(NetworkModel(machine), p)


def test_single_task_collectives_are_free():
    c = costs(xt4("SN"), 1)
    assert c.barrier_s() == 0.0
    assert c.bcast_s(1024) == 0.0
    assert c.allreduce_s(8) == 0.0
    assert c.alltoall_s(100) == 0.0


def test_ntasks_validation():
    with pytest.raises(ValueError):
        costs(xt4("SN"), 0)


def test_negative_bytes_rejected():
    c = costs(xt4("SN"), 16)
    for fn in (c.bcast_s, c.reduce_s, c.allreduce_s, c.gather_s, c.allgather_s,
               c.alltoall_s, c.alltoallv_s):
        with pytest.raises(ValueError):
            fn(-1)


def test_allreduce_latency_bound_grows_logarithmically():
    c64 = costs(xt4("SN"), 64)
    c4096 = costs(xt4("SN"), 4096)
    # 8-byte allreduce: latency dominated; ~2*log2(p)*L.
    t64 = c64.allreduce_s(8)
    t4096 = c4096.allreduce_s(8)
    assert t4096 > t64
    # log2(4096)/log2(64) = 2, latency also grows slightly with hops.
    assert 1.5 < t4096 / t64 < 4.0


def test_allreduce_vn_slower_than_sn():
    # The paper's POP barotropic observation: VN collectives pay NIC sharing.
    sn = costs(xt4("SN"), 1024).allreduce_s(8)
    vn = costs(xt4("VN"), 1024).allreduce_s(8)
    assert vn > sn


def test_allreduce_large_uses_rabenseifner():
    c = costs(xt4("SN"), 256)
    m = 8 * 1024 * 1024
    t = c.allreduce_s(m)
    # Must be well below the naive log2(p) * m/B tree cost.
    naive = 8 * (m / (c.bw_Bs)) * 1.0
    assert t < naive


def test_barrier_scales_with_log_p():
    assert costs(xt4("SN"), 1024).barrier_s() > costs(xt4("SN"), 16).barrier_s()


def test_bcast_large_message_pipelines():
    c = costs(xt4("SN"), 1024)
    m = 64 * 1024 * 1024
    tree_bound = 10 * m / c.bw_Bs
    assert c.bcast_s(m) < tree_bound


def test_alltoall_injection_vs_bisection():
    # Small jobs: injection-bound; huge jobs: bisection-bound.
    c_small = costs(xt4("SN"), 8)
    t = c_small.alltoall_s(1_000_000)
    injection = 7 * 1_000_000 / c_small.bw_Bs
    assert t >= injection
    c_big = costs(xt4("SN"), 4096)
    t_big = c_big.alltoall_s(100_000)
    injection_big = 4095 * 100_000 / c_big.bw_Bs
    assert t_big > injection_big  # bisection cap kicked in


def test_alltoallv_matches_alltoall_for_uniform_load():
    c = costs(xt4("SN"), 64)
    per_pair = 10_000
    assert c.alltoallv_s(per_pair * 63) == pytest.approx(c.alltoall_s(per_pair))


def test_gather_scatter_symmetric():
    c = costs(xt4("SN"), 128)
    assert c.gather_s(4096) == c.scatter_s(4096)


@given(
    p=st.integers(min_value=2, max_value=4096),
    nbytes=st.integers(min_value=0, max_value=10_000_000),
)
def test_costs_nonnegative_and_monotone_in_bytes(p, nbytes):
    c = costs(xt3(), p)
    for fn in (c.bcast_s, c.reduce_s, c.allreduce_s, c.gather_s, c.allgather_s):
        t0 = fn(nbytes)
        t1 = fn(nbytes + 1024)
        assert t0 >= 0
        assert t1 >= t0


def test_xt4_allreduce_latency_similar_to_xt3_at_scale():
    """Paper §6.2: 'MPI latency is essentially the same on the XT3 and XT4'
    — within ~35% — so the barotropic phase does not improve much."""
    t3 = costs(xt3(), 4096).allreduce_s(8)
    t4 = costs(xt4("SN"), 4096).allreduce_s(8)
    assert abs(t4 - t3) / t3 < 0.4
