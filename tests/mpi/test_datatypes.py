"""Tests for payload sizing and reduction operators."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.mpi import payload_nbytes, reduce_values


def test_none_is_zero_bytes():
    assert payload_nbytes(None) == 0


def test_numpy_array_nbytes():
    a = np.zeros(100, dtype=np.float64)
    assert payload_nbytes(a) == 800
    assert payload_nbytes(np.float32(1.5)) == 4


def test_bytes_and_str():
    assert payload_nbytes(b"abcd") == 4
    assert payload_nbytes("héllo") == len("héllo".encode())


def test_scalars_are_8_bytes():
    assert payload_nbytes(5) == 8
    assert payload_nbytes(3.14) == 8
    assert payload_nbytes(True) == 8


def test_containers_sum_elements():
    assert payload_nbytes([1, 2.0, b"xy"]) == 8 + 8 + 2
    assert payload_nbytes({(1): b"xxxx"}) == 8 + 4
    assert payload_nbytes((np.zeros(2), np.zeros(3))) == 16 + 24


def test_generic_object_falls_back_to_pickle():
    class Thing:
        pass

    assert payload_nbytes(Thing()) > 0


def test_reduce_sum_scalars():
    assert reduce_values([1, 2, 3], "sum") == 6
    assert reduce_values([2, 3], "prod") == 6
    assert reduce_values([4, 1, 3], "max") == 4
    assert reduce_values([4, 1, 3], "min") == 1


def test_reduce_arrays_elementwise():
    a = np.array([1.0, 5.0])
    b = np.array([3.0, 2.0])
    assert np.array_equal(reduce_values([a, b], "sum"), [4.0, 7.0])
    assert np.array_equal(reduce_values([a, b], "max"), [3.0, 5.0])
    # Inputs are not mutated.
    assert np.array_equal(a, [1.0, 5.0])


def test_reduce_validation():
    with pytest.raises(ValueError):
        reduce_values([1], "xor")
    with pytest.raises(ValueError):
        reduce_values([], "sum")


@given(st.lists(st.integers(min_value=-1000, max_value=1000), min_size=1, max_size=20))
def test_reduce_matches_builtins(xs):
    assert reduce_values(xs, "sum") == sum(xs)
    assert reduce_values(xs, "max") == max(xs)
    assert reduce_values(xs, "min") == min(xs)
