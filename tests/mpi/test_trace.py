"""Tests for MPI event tracing and the text Gantt renderer."""

import pytest

from repro.machine import xt4
from repro.mpi import MPIJob, profiled_job_run
from repro.mpi.profiler import render_timeline


def traced(fn, ntasks=4):
    job = MPIJob(xt4("SN"), ntasks)
    return profiled_job_run(job, fn, trace=True)


def test_events_recorded_in_time_order():
    def main(comm):
        yield from comm.barrier()
        yield from comm.allreduce(1.0)
        yield from comm.barrier()
        return None

    result, profiles = traced(main)
    events = profiles[0].events
    assert [e.op for e in events] == ["barrier", "allreduce", "barrier"]
    assert all(e.t1 >= e.t0 for e in events)
    assert events[0].t1 <= events[1].t0 <= events[2].t0


def test_trace_disabled_by_default():
    def main(comm):
        yield from comm.barrier()
        return None

    job = MPIJob(xt4("SN"), 2)
    _, profiles = profiled_job_run(job, main)
    assert profiles[0].events == []
    assert profiles[0].ops["barrier"].calls == 1


def test_event_durations_match_opstats():
    def main(comm):
        yield from comm.allreduce(1.0)
        yield from comm.allreduce(2.0)
        return None

    _, profiles = traced(main)
    p = profiles[0]
    assert sum(e.duration_s for e in p.events) == pytest.approx(
        p.ops["allreduce"].time_s
    )


def test_render_timeline():
    def main(comm):
        yield from comm.compute(1e7)
        payloads = [b"x" * 50_000] * comm.size
        yield from comm.alltoallv(payloads)
        yield from comm.compute(1e7)
        yield from comm.barrier()  # last event: owns the final column
        return None

    result, profiles = traced(main)
    chart = render_timeline(profiles, result.elapsed_s, width=40)
    lines = chart.splitlines()
    assert lines[0].startswith("MPI timeline")
    assert len([l for l in lines if l.startswith("rank")]) == 4
    body = "\n".join(lines[1:-1])
    assert "." in body  # compute time visible
    assert "T" in body  # alltoallv visible
    assert "|" in body  # barrier visible


def test_render_timeline_validation():
    with pytest.raises(ValueError):
        render_timeline({}, 0.0)
