"""Tests for reduce_scatter, scan and exscan."""

import numpy as np
import pytest

from repro.machine import xt4
from repro.mpi import CollectiveCostModel, MPIJob
from repro.network import NetworkModel


def run(fn, ntasks=4, mode="SN"):
    return MPIJob(xt4(mode), ntasks).run(fn)


def test_reduce_scatter_semantics():
    def main(comm):
        # rank r contributes [r, 10+r, 20+r, 30+r]
        values = [10 * slot + comm.rank for slot in range(comm.size)]
        mine = yield from comm.reduce_scatter(values, op="sum")
        return mine

    res = run(main)
    # slot i combined = sum over ranks of (10*i + r) = 40*i + 6
    assert res.returns == [6, 46, 86, 126]


def test_reduce_scatter_arrays():
    def main(comm):
        values = [np.full(3, float(comm.rank)) for _ in range(comm.size)]
        mine = yield from comm.reduce_scatter(values, op="sum")
        return mine.tolist()

    res = run(main, ntasks=3)
    assert res.returns[0] == [3.0, 3.0, 3.0]


def test_reduce_scatter_validation():
    def main(comm):
        yield from comm.reduce_scatter([1])

    with pytest.raises(ValueError):
        run(main, ntasks=2)


def test_scan_inclusive_prefix():
    def main(comm):
        out = yield from comm.scan(comm.rank + 1, op="sum")
        return out

    res = run(main, ntasks=5)
    assert res.returns == [1, 3, 6, 10, 15]


def test_scan_max():
    def main(comm):
        data = [3, 1, 4, 1, 5][comm.rank]
        out = yield from comm.scan(data, op="max")
        return out

    res = run(main, ntasks=5)
    assert res.returns == [3, 3, 4, 4, 5]


def test_exscan():
    def main(comm):
        out = yield from comm.exscan(comm.rank + 1, op="sum")
        return out

    res = run(main, ntasks=4)
    assert res.returns == [None, 1, 3, 6]


def test_cost_models_nonnegative_and_free_for_one_task():
    c = CollectiveCostModel.for_machine(NetworkModel(xt4("SN")), 1)
    assert c.reduce_scatter_s(1024) == 0.0
    assert c.scan_s(8) == 0.0
    c64 = CollectiveCostModel.for_machine(NetworkModel(xt4("VN")), 64)
    assert c64.reduce_scatter_s(8192) > 0
    assert c64.scan_s(8) > 0
    with pytest.raises(ValueError):
        c64.reduce_scatter_s(-1)
    with pytest.raises(ValueError):
        c64.scan_s(-1)


def test_reduce_scatter_cheaper_than_allreduce():
    """It's half of Rabenseifner's allreduce, so it must cost less."""
    c = CollectiveCostModel.for_machine(NetworkModel(xt4("SN")), 256)
    m = 1 << 20
    assert c.reduce_scatter_s(m) < c.allreduce_s(m)
