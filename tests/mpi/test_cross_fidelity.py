"""Cross-fidelity consistency: DES measurements match the analytic costs.

The paper-scale experiments trust the closed-form cost models; these
tests pin them to what the discrete-event MPI actually charges, so the
two fidelities cannot drift apart silently.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.machine import xt4
from repro.mpi import CollectiveCostModel, MPIJob
from repro.network import NetworkModel


def measure_collective(machine, ntasks, op_name, nbytes):
    """Elapsed simulated time of one collective after a barrier."""

    def main(comm):
        yield from comm.barrier()
        t0 = comm.wtime()
        if op_name == "allreduce":
            yield from comm.allreduce(b"x" * nbytes)
        elif op_name == "bcast":
            yield from comm.bcast(b"x" * nbytes if comm.rank == 0 else None)
        elif op_name == "alltoall":
            yield from comm.alltoall([b"x" * nbytes] * comm.size)
        elif op_name == "barrier":
            yield from comm.barrier()
        else:  # pragma: no cover
            raise AssertionError(op_name)
        return comm.wtime() - t0

    job = MPIJob(machine, ntasks)
    result = job.run(main)
    return max(result.returns)


@pytest.mark.parametrize("mode", ["SN", "VN"])
@pytest.mark.parametrize("op,nbytes", [
    ("barrier", 0),
    ("allreduce", 8),
    ("allreduce", 65536),
    ("bcast", 4096),
    ("alltoall", 1024),
])
def test_des_collective_matches_cost_model(mode, op, nbytes):
    machine = xt4(mode)
    p = 16
    costs = CollectiveCostModel.for_machine(NetworkModel(machine), p)
    expected = {
        "barrier": costs.barrier_s,
        "allreduce": lambda: costs.allreduce_s(nbytes),
        "bcast": lambda: costs.bcast_s(nbytes),
        "alltoall": lambda: costs.alltoall_s(nbytes),
    }[op]()
    measured = measure_collective(machine, p, op, nbytes)
    assert measured == pytest.approx(expected, rel=1e-9)


@settings(max_examples=10, deadline=None)
@given(nbytes=st.integers(min_value=8, max_value=4_000_000))
def test_des_pt2pt_time_matches_model_property(nbytes):
    machine = xt4("SN")
    model = NetworkModel(machine)

    def main(comm):
        if comm.rank == 0:
            t0 = comm.wtime()
            yield from comm.send(b"", dest=1, nbytes=nbytes)
            return comm.wtime() - t0
        yield from comm.recv(source=0)
        return None

    measured = MPIJob(machine, 2).run(main).returns[0]
    expected = model.pt2pt_time_s(nbytes, hops=1)
    assert measured == pytest.approx(expected, rel=0.02)


def test_vn_des_collective_slower_than_sn():
    sn = measure_collective(xt4("SN"), 16, "alltoall", 4096)
    vn = measure_collective(xt4("VN"), 16, "alltoall", 4096)
    assert vn > sn
