"""Tests for MPI_Comm_split and sub-communicators."""

import numpy as np
import pytest

from repro.machine import xt4
from repro.mpi import MPIJob


def run(fn, ntasks=8, mode="SN"):
    return MPIJob(xt4(mode), ntasks).run(fn)


def test_split_groups_by_color():
    def main(comm):
        row = yield from comm.split(color=comm.rank // 4)
        return (row.rank, row.size, row.world_ranks)

    res = run(main, ntasks=8)
    assert res.returns[0] == (0, 4, [0, 1, 2, 3])
    assert res.returns[5] == (1, 4, [4, 5, 6, 7])


def test_split_key_orders_within_color():
    def main(comm):
        sub = yield from comm.split(color=0, key=-comm.rank)  # reversed order
        return (sub.rank, sub.world_ranks)

    res = run(main, ntasks=4)
    assert res.returns[3] == (0, [3, 2, 1, 0])  # highest world rank first


def test_split_none_opts_out():
    def main(comm):
        color = None if comm.rank == 0 else 1
        sub = yield from comm.split(color)
        if sub is None:
            return "out"
        total = yield from sub.allreduce(comm.rank)
        return total

    res = run(main, ntasks=4)
    assert res.returns[0] == "out"
    assert res.returns[1] == 1 + 2 + 3


def test_subgroup_collectives_are_independent():
    def main(comm):
        parity = comm.rank % 2
        sub = yield from comm.split(parity)
        total = yield from sub.allreduce(comm.rank, op="sum")
        biggest = yield from sub.allreduce(comm.rank, op="max")
        return (total, biggest)

    res = run(main, ntasks=6)
    assert res.returns[0] == (0 + 2 + 4, 4)
    assert res.returns[1] == (1 + 3 + 5, 5)


def test_subgroup_pt2pt_translation_and_isolation():
    def main(comm):
        sub = yield from comm.split(comm.rank % 2)
        # Ring within the subgroup, tag 0 in every group simultaneously.
        right = (sub.rank + 1) % sub.size
        left = (sub.rank - 1) % sub.size
        got = yield from sub.sendrecv(comm.rank * 10, dest=right, source=left)
        return got

    res = run(main, ntasks=8)
    # Even group world ranks [0,2,4,6]: rank r receives from its left.
    assert res.returns[0] == 60
    assert res.returns[2] == 0
    assert res.returns[1] == 70
    assert res.returns[3] == 10


def test_subgroup_recv_any_source_only_sees_group_traffic():
    def main2(comm):
        sub = yield from comm.split(comm.rank % 2)
        if comm.rank == 0:
            yield from comm.send("world", dest=2, tag=7)  # world traffic
            yield from sub.send("group", dest=1, tag=7)  # to world rank 2
            return None
        if comm.rank == 2:
            g, src, tag = yield from sub.recv_with_status()
            w = yield from comm.recv(source=0, tag=7)
            return (g, src, tag, w)
        return None

    res = run(main2, ntasks=4)
    assert res.returns[2] == ("group", 0, 7, "world")


def test_subgroup_gather_bcast_scatter():
    def main(comm):
        sub = yield from comm.split(comm.rank // 2)
        g = yield from sub.gather(comm.rank, root=0)
        b = yield from sub.bcast("hello" if sub.rank == 1 else None, root=1)
        s = yield from sub.scatter([100, 200] if sub.rank == 0 else None, root=0)
        return (g, b, s)

    res = run(main, ntasks=4)
    assert res.returns[0] == ([0, 1], "hello", 100)
    assert res.returns[1] == (None, "hello", 200)
    assert res.returns[2] == ([2, 3], "hello", 100)


def test_nested_split():
    def main(comm):
        half = yield from comm.split(comm.rank // 4)  # two groups of 4
        quarter = yield from half.split(half.rank // 2)  # groups of 2
        total = yield from quarter.allreduce(comm.rank)
        return (quarter.world_ranks, total)

    res = run(main, ntasks=8)
    assert res.returns[0] == ([0, 1], 1)
    assert res.returns[6] == ([6, 7], 13)


def test_subcomm_collective_cost_scales_with_group_size():
    def main(comm):
        sub = yield from comm.split(comm.rank % 2)
        yield from comm.barrier()
        t0 = comm.wtime()
        yield from sub.allreduce(1.0)
        sub_t = comm.wtime() - t0
        yield from comm.barrier()
        t0 = comm.wtime()
        yield from comm.allreduce(1.0)
        world_t = comm.wtime() - t0
        return (sub_t, world_t)

    res = run(main, ntasks=16)
    sub_t, world_t = res.returns[0]
    assert sub_t < world_t  # 8-rank group cheaper than 16-rank world


def test_split_nonmember_construction_guard():
    from repro.mpi.subcomm import SubComm

    job = MPIJob(xt4("SN"), 4)
    with pytest.raises(ValueError):
        SubComm(job.comms[0], "g", [1, 2])


def test_distributed_fft_style_row_col_split():
    """The ScaLAPACK/CAM pattern: a 2D grid from two splits, then a
    row-broadcast and a column-sum."""

    def main(comm):
        pr, pc = 2, 2
        my_row, my_col = divmod(comm.rank, pc)
        row_comm = yield from comm.split(my_row)
        col_comm = yield from comm.split(my_col)
        row_val = yield from row_comm.bcast(
            f"row{my_row}" if row_comm.rank == 0 else None, root=0
        )
        col_sum = yield from col_comm.allreduce(comm.rank)
        return (row_val, col_sum)

    res = run(main, ntasks=4)
    assert res.returns == [
        ("row0", 0 + 2),
        ("row0", 1 + 3),
        ("row1", 0 + 2),
        ("row1", 1 + 3),
    ]
