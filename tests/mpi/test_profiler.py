"""Tests for the MPI profiler (mpiP-style breakdowns of DES runs)."""

import numpy as np
import pytest

from repro.machine import xt4
from repro.mpi import MPIJob, profiled_job_run
from repro.mpi.profiler import MPIProfile


def run_profiled(machine, ntasks, fn, *args):
    job = MPIJob(machine, ntasks)
    return profiled_job_run(job, fn, *args)


def test_counts_and_ops_recorded():
    def main(comm):
        yield from comm.barrier()
        yield from comm.allreduce(1.0)
        yield from comm.allreduce(2.0)
        if comm.rank == 0:
            yield from comm.send(b"x" * 100, dest=1)
        elif comm.rank == 1:
            yield from comm.recv(source=0)
        return None

    result, profiles = run_profiled(xt4("SN"), 2, main)
    p0 = profiles[0]
    assert p0.ops["barrier"].calls == 1
    assert p0.ops["allreduce"].calls == 2
    assert p0.ops["send"].calls == 1
    assert p0.ops["send"].bytes == 100
    assert profiles[1].ops["recv"].calls == 1
    assert p0.total_calls == 4


def test_time_accumulates_and_fraction():
    def main(comm):
        yield from comm.allreduce(np.zeros(8))
        payloads = [b"x" * 10_000] * comm.size
        yield from comm.alltoallv(payloads)
        return None

    _, profiles = run_profiled(xt4("VN"), 4, main)
    p = profiles[0]
    assert p.total_time_s > 0
    assert 0 < p.fraction("alltoallv") < 1
    assert p.fraction("allreduce") + p.fraction("alltoallv") == pytest.approx(1.0)


def test_compute_is_not_mpi_time():
    def main(comm):
        yield from comm.compute(1.0e9)
        yield from comm.barrier()
        return None

    _, profiles = run_profiled(xt4("SN"), 2, main)
    # Only the barrier appears; compute time excluded.
    assert set(profiles[0].ops) == {"barrier"}


def test_wrapped_comm_passthrough_semantics():
    def main(comm):
        assert comm.size == 3
        v = yield from comm.allgather(comm.rank)
        g = yield from comm.gather(comm.rank, root=1)
        s = yield from comm.scatter([10, 20, 30] if comm.rank == 0 else None, root=0)
        b = yield from comm.bcast("hi" if comm.rank == 2 else None, root=2)
        r = yield from comm.reduce(1, op="sum", root=0)
        return (v, g, s, b, r)

    result, profiles = run_profiled(xt4("SN"), 3, main)
    v, g, s, b, r = result.returns[2]
    assert v == [0, 1, 2]
    assert s == 30 and b == "hi"
    assert profiles[2].ops["allgather"].calls == 1


def test_sendrecv_and_nonblocking_counted():
    def main(comm):
        peer = 1 - comm.rank
        req = comm.isend(comm.rank, dest=peer, tag=9)
        data = yield from comm.recv(source=peer, tag=9)
        yield req.event
        out = yield from comm.sendrecv(data, dest=peer, tag=10)
        return out

    _, profiles = run_profiled(xt4("SN"), 2, main)
    assert profiles[0].ops["isend"].calls == 1
    assert profiles[0].ops["sendrecv"].calls == 1


def test_profile_rows_render():
    from repro.core.report import render_table

    def main(comm):
        yield from comm.barrier()
        return None

    _, profiles = run_profiled(xt4("SN"), 2, main)
    text = render_table(profiles[0].as_rows())
    assert "barrier" in text


def test_alltoallv_dominates_cam_style_breakdown():
    """A CAM-physics-shaped step: heavy alltoallv + tiny allreduce — the
    profiler attributes the MPI time the way Fig. 16's analysis does."""

    def main(comm):
        payloads = [b"x" * 50_000] * comm.size
        for _ in range(4):
            yield from comm.alltoallv(payloads)
        yield from comm.allreduce(0.0)
        return None

    _, profiles = run_profiled(xt4("VN"), 8, main)
    assert profiles[0].fraction("alltoallv") > 0.7


def test_empty_profile_fraction_zero():
    p = MPIProfile(rank=0)
    assert p.fraction("send") == 0.0
    assert p.total_time_s == 0.0
