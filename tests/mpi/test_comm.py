"""Integration tests for the simulated MPI communicator."""

import numpy as np
import pytest

from repro.machine import xt4
from repro.mpi import ANY_SOURCE, MPIJob, Request


def run(machine, ntasks, fn, *args, **kwargs):
    return MPIJob(machine, ntasks).run(fn, *args, **kwargs)


# ----------------------------------------------------------------- pt2pt
def test_send_recv_delivers_payload():
    def main(comm):
        if comm.rank == 0:
            yield from comm.send(np.arange(4), dest=1)
            return None
        data = yield from comm.recv(source=0)
        return data.tolist()

    res = run(xt4("SN"), 2, main)
    assert res.returns[1] == [0, 1, 2, 3]
    assert res.elapsed_s > 0


def test_send_recv_any_source_and_status():
    def main(comm):
        if comm.rank == 0:
            got = []
            for _ in range(2):
                obj, src, tag = yield from comm.recv_with_status(
                    source=ANY_SOURCE
                )
                got.append((obj, src, tag))
            return sorted(got)
        yield from comm.send(comm.rank * 10, dest=0, tag=comm.rank)
        return None

    res = run(xt4("SN"), 3, main)
    assert res.returns[0] == [(10, 1, 1), (20, 2, 2)]


def test_tag_matching_out_of_order():
    def main(comm):
        if comm.rank == 0:
            yield from comm.send("first", dest=1, tag=1)
            yield from comm.send("second", dest=1, tag=2)
            return None
        second = yield from comm.recv(source=0, tag=2)
        first = yield from comm.recv(source=0, tag=1)
        return (first, second)

    res = run(xt4("SN"), 2, main)
    assert res.returns[1] == ("first", "second")


def test_isend_irecv_requests():
    def main(comm):
        if comm.rank == 0:
            reqs = [comm.isend(i, dest=1, tag=i) for i in range(3)]
            yield from Request.waitall(reqs)
            return None
        reqs = [comm.irecv(source=0, tag=i) for i in range(3)]
        values = []
        for r in reqs:
            v = yield from r.wait()
            values.append(v)
        return values

    res = run(xt4("SN"), 2, main)
    assert res.returns[1] == [0, 1, 2]


def test_request_test_polls_without_blocking():
    def main(comm):
        if comm.rank == 0:
            req = comm.isend(b"x" * 1024, dest=1)
            assert not req.test()  # transfer has finite latency
            yield from req.wait()
            assert req.test()
            return None
        data = yield from comm.recv(source=0)
        return len(data)

    res = run(xt4("SN"), 2, main)
    assert res.returns[1] == 1024


def test_sendrecv_exchange():
    def main(comm):
        peer = 1 - comm.rank
        data = yield from comm.sendrecv(comm.rank, dest=peer)
        return data

    res = run(xt4("SN"), 2, main)
    assert res.returns == [1, 0]


def test_invalid_peer_rejected():
    def main(comm):
        yield from comm.send(1, dest=5)

    with pytest.raises(ValueError):
        run(xt4("SN"), 2, main)


def test_deadlock_detection():
    def main(comm):
        yield from comm.recv(source=0)  # nobody ever sends

    with pytest.raises(RuntimeError, match="deadlock"):
        run(xt4("SN"), 2, main)


def test_message_time_scales_with_size():
    def main(comm, nbytes):
        if comm.rank == 0:
            yield from comm.send(b"", dest=1, nbytes=nbytes)
            return None
        yield from comm.recv(source=0)
        return comm.wtime()

    small = run(xt4("SN"), 2, main, 1_000)
    large = run(xt4("SN"), 2, main, 10_000_000)
    assert large.returns[1] > small.returns[1]


# -------------------------------------------------------------- collectives
def test_barrier_synchronizes():
    def main(comm):
        if comm.rank == 0:
            yield from comm.compute(5.0e9)  # rank 0 arrives late
        t_before = comm.wtime()
        yield from comm.barrier()
        return (t_before, comm.wtime())

    res = run(xt4("SN"), 4, main)
    after = [t[1] for t in res.returns]
    assert max(after) == pytest.approx(min(after))
    assert after[0] > res.returns[1][0]  # barrier completed after rank 0 arrived


def test_bcast_delivers_root_object():
    def main(comm):
        data = np.arange(3) if comm.rank == 1 else None
        out = yield from comm.bcast(data, root=1)
        return out.sum()

    res = run(xt4("SN"), 4, main)
    assert res.returns == [3, 3, 3, 3]


def test_allreduce_sum_and_max():
    def main(comm):
        s = yield from comm.allreduce(comm.rank + 1, op="sum")
        m = yield from comm.allreduce(comm.rank, op="max")
        return (s, m)

    res = run(xt4("VN"), 4, main)
    assert res.returns == [(10, 3)] * 4


def test_allreduce_arrays():
    def main(comm):
        v = np.full(4, float(comm.rank))
        out = yield from comm.allreduce(v, op="sum")
        return out.tolist()

    res = run(xt4("SN"), 3, main)
    assert res.returns[0] == [3.0, 3.0, 3.0, 3.0]


def test_reduce_only_root_gets_value():
    def main(comm):
        out = yield from comm.reduce(comm.rank, op="sum", root=2)
        return out

    res = run(xt4("SN"), 4, main)
    assert res.returns == [None, None, 6, None]


def test_gather_and_allgather():
    def main(comm):
        g = yield from comm.gather(comm.rank * 2, root=0)
        ag = yield from comm.allgather(comm.rank)
        return (g, ag)

    res = run(xt4("SN"), 3, main)
    assert res.returns[0] == ([0, 2, 4], [0, 1, 2])
    assert res.returns[1] == (None, [0, 1, 2])


def test_scatter():
    def main(comm):
        values = [10, 20, 30] if comm.rank == 0 else None
        v = yield from comm.scatter(values, root=0)
        return v

    res = run(xt4("SN"), 3, main)
    assert res.returns == [10, 20, 30]


def test_scatter_validates_root_values():
    def main(comm):
        yield from comm.scatter([1], root=0)

    with pytest.raises(ValueError):
        run(xt4("SN"), 2, main)


def test_alltoall_transpose_semantics():
    def main(comm):
        out = yield from comm.alltoall(
            [f"{comm.rank}->{j}" for j in range(comm.size)]
        )
        return out

    res = run(xt4("SN"), 3, main)
    assert res.returns[1] == ["0->1", "1->1", "2->1"]


def test_alltoallv_heavier_rank_costs_more():
    def run_with_imbalance(heavy_bytes):
        def main(comm):
            payloads = [
                b"x" * (heavy_bytes if comm.rank == 0 else 8)
                for _ in range(comm.size)
            ]
            yield from comm.alltoallv(payloads)
            return comm.wtime()

        return run(xt4("SN"), 4, main).elapsed_s

    assert run_with_imbalance(1_000_000) > run_with_imbalance(1_000)


def test_collective_mismatch_detected():
    def main(comm):
        if comm.rank == 0:
            yield from comm.barrier()  # simlint: ignore[SL401] — mismatch is the subject under test
        else:
            yield from comm.allreduce(1)  # simlint: ignore[SL401] — mismatch is the subject under test

    with pytest.raises(RuntimeError, match="mismatch"):
        run(xt4("SN"), 2, main)


# --------------------------------------------------------------- compute
def test_compute_charges_kernel_time():
    def main(comm):
        t0 = comm.wtime()
        yield from comm.compute(1.0e9, profile="dgemm")
        return comm.wtime() - t0

    res = run(xt4("SN"), 1, main)
    from repro.machine import CoreModel

    expected = 1.0 / CoreModel(xt4("SN")).dgemm_gflops()
    assert res.returns[0] == pytest.approx(expected)


def test_vn_compute_slower_for_memory_bound_kernel():
    def main(comm):
        yield from comm.compute(1.0e9, profile="fft")
        return comm.wtime()

    sn = run(xt4("SN"), 2, main)
    vn = run(xt4("VN"), 2, main)
    assert vn.elapsed_s > sn.elapsed_s


def test_determinism():
    def main(comm):
        right = (comm.rank + 1) % comm.size
        left = (comm.rank - 1) % comm.size
        yield from comm.sendrecv(np.arange(100), dest=right, source=left)
        s = yield from comm.allreduce(comm.rank)
        return s

    a = run(xt4("VN"), 8, main)
    b = run(xt4("VN"), 8, main)
    assert a.elapsed_s == b.elapsed_s
    assert a.rank_times == b.rank_times
