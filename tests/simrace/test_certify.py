"""Certifier: divergence diffing, certificate cache, memo clearing."""

import functools
import json
import types

import pytest

from repro.simrace.certify import (
    Certificate,
    CertificateCache,
    _clear_module_memoization,
    certificate_key,
    certify_driver,
    first_divergence,
)


# -- first_divergence ---------------------------------------------------------

def test_first_divergence_none_when_equal():
    blob = {"result": {"rows": [1, 2]}, "counters": {"a": 3.0}}
    assert first_divergence(blob, json.loads(json.dumps(blob))) is None


def test_first_divergence_reports_path_and_values():
    a = {"result": {"rows": [1, 2]}, "counters": {"a": 3.0}}
    b = {"result": {"rows": [1, 5]}, "counters": {"a": 3.0}}
    path, base, perm = first_divergence(a, b)
    assert path == "$.result.rows[1]"
    assert (base, perm) == (2, 5)


def test_first_divergence_shape_mismatches():
    assert first_divergence([1], [1, 2])[0] == "$"
    path, base, perm = first_divergence({"a": 1}, {"b": 1})
    assert path == "$" and base == ["a"] and perm == ["b"]
    assert first_divergence(1, 1.0) is not None  # type mismatch


def test_first_divergence_finds_earliest_key_in_sorted_order():
    a = {"b": 1, "a": 1}
    b = {"b": 2, "a": 2}
    assert first_divergence(a, b)[0] == "$.a"


# -- certificate cache --------------------------------------------------------

def _cert(**kw):
    base = dict(
        exp_id="fig08",
        title="t",
        schedule_invariant=True,
        k=4,
        base_seed=1,
        seeds=[1, 2, 3, 4],
        fingerprint="f",
    )
    base.update(kw)
    return Certificate(**base)


def test_cache_round_trip(tmp_path):
    cache = CertificateCache(tmp_path)
    key = "ab" + "0" * 62
    cert = _cert()
    path = cache.put(key, cert)
    assert path.parent.name == "ab"
    got = cache.get(key)
    assert got is not None and not got.from_cache
    assert got.to_dict() == cert.to_dict()


def test_cache_corruption_is_a_miss(tmp_path):
    cache = CertificateCache(tmp_path)
    key = "cd" + "0" * 62
    path = cache.put(key, _cert())
    path.write_text("{not json", encoding="utf-8")
    assert cache.get(key) is None


def test_cache_key_mismatch_is_a_miss(tmp_path):
    cache = CertificateCache(tmp_path)
    key_a = "ee" + "0" * 62
    key_b = "ee" + "1" * 62
    cache.put(key_a, _cert())
    # A file moved/copied to the wrong key must not serve.
    cache.path_for(key_b).parent.mkdir(parents=True, exist_ok=True)
    cache.path_for(key_b).write_text(
        cache.path_for(key_a).read_text(), encoding="utf-8"
    )
    assert cache.get(key_b) is None


def test_certificate_key_depends_on_parameters():
    base = certificate_key("fig08", 4, 1)
    assert certificate_key("fig08", 4, 1) == base
    assert certificate_key("fig08", 5, 1) != base
    assert certificate_key("fig08", 4, 2) != base
    assert certificate_key("fig02", 4, 1) != base


# -- memo clearing ------------------------------------------------------------

def test_clear_module_memoization_resets_lru_caches():
    mod = types.ModuleType("fake_driver")
    calls = []

    @functools.lru_cache(maxsize=1)
    def sweep():
        calls.append(1)
        return 42

    mod.sweep = sweep
    mod.plain = lambda: 0
    mod.data = [1, 2]
    assert mod.sweep() == 42 and mod.sweep() == 42
    assert len(calls) == 1
    _clear_module_memoization(mod)
    assert mod.sweep() == 42
    assert len(calls) == 2  # the cache was actually dropped


def test_certifier_defeats_driver_memoization():
    # ext_resilience memoizes its sweep with @lru_cache; a cached sweep
    # would neither re-run under the permuted tie-break nor re-record
    # its counters. The certifier must re-execute it every time.
    import repro.experiments.ext_resilience as drv

    drv._sweep()  # warm the memo, as a prior `repro run` would
    cert = certify_driver("ext_resilience", k=1, cache=None)
    assert cert.schedule_invariant, cert.divergence


# -- certify_driver -----------------------------------------------------------

def test_certify_driver_invariant_and_cached(tmp_path):
    cache = CertificateCache(tmp_path)
    first = certify_driver("fig08", k=2, cache=cache)
    assert first.schedule_invariant
    assert not first.from_cache
    assert len(first.seeds) == 2
    second = certify_driver("fig08", k=2, cache=cache)
    assert second.from_cache
    assert second.to_dict() == first.to_dict()
    forced = certify_driver("fig08", k=2, cache=cache, force=True)
    assert not forced.from_cache


def test_certify_driver_k_validates():
    with pytest.raises(ValueError):
        certify_driver("fig08", k=0, cache=None)
