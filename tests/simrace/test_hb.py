"""RaceTracker: happens-before forest, touch table, race reporting."""

import pytest

from repro.simengine import Delay, Resource, Simulator, Store
from repro.simrace import RaceTracker, ScheduleRaceError


def test_sanitize_race_attaches_tracker():
    sim = Simulator(sanitize="race")
    assert isinstance(sim.race, RaceTracker)
    assert Simulator().race is None
    assert Simulator(sanitize=True).race is None


def test_unrelated_same_time_requests_race():
    # Two processes spawned at setup request the same resource at the
    # same timestamp: no HB path orders them, so the tracker reports
    # both provenances.
    sim = Simulator(sanitize="race")
    res = Resource(sim, capacity=2, name="nic")

    def worker():
        yield Delay(1.0)
        try:
            yield res.request()
        finally:
            res.release()

    sim.spawn(worker(), name="a")
    sim.spawn(worker(), name="b")
    with pytest.raises(ScheduleRaceError) as err:
        sim.run()
    msg = str(err.value)
    assert "resource 'nic'" in msg
    assert "t=1" in msg
    assert "no happens-before path" in msg
    assert msg.count("event #") >= 2  # both provenances named


def test_parent_child_touches_are_ordered():
    # The second requester is spawned *by* the first (a scheduled-by
    # edge), so the same-time touches are ordered: no race.
    sim = Simulator(sanitize="race")
    res = Resource(sim, capacity=2, name="nic")

    def child():
        try:
            yield res.request()
        finally:
            res.release()

    def parent():
        yield Delay(1.0)
        try:
            yield res.request()
        finally:
            res.release()
        yield sim.spawn(child(), name="child")

    sim.spawn(parent(), name="parent")
    sim.run()
    assert sim.race.pairs_checked >= 1


def test_different_timestamps_never_race():
    sim = Simulator(sanitize="race")
    res = Resource(sim, capacity=1, name="slot")

    def worker(delay):
        yield Delay(delay)
        try:
            yield res.request()
        finally:
            res.release()

    sim.spawn(worker(1.0), name="a")
    sim.spawn(worker(2.0), name="b")
    sim.run()  # the clock orders the touches: no error


def test_store_touches_are_tracked():
    sim = Simulator(sanitize="race")
    store = Store(sim, name="queue")

    def producer():
        yield Delay(1.0)
        store.put("x")

    def consumer():
        yield Delay(1.0)
        yield store.get()

    sim.spawn(producer(), name="p")
    sim.spawn(consumer(), name="c")
    with pytest.raises(ScheduleRaceError) as err:
        sim.run()
    assert "store 'queue'" in str(err.value)


def test_setup_touches_are_program_order():
    # Touches before run() (model construction) are plain program order:
    # the tracker ignores them instead of reporting phantom races.
    sim = Simulator(sanitize="race")
    store = Store(sim, name="warm")
    store.put("a")
    store.put("b")

    def consumer():
        yield store.get()
        yield store.get()

    sim.spawn(consumer(), name="c")
    sim.run()


def test_touch_table_resets_when_clock_advances():
    sim = Simulator(sanitize="race")
    res = Resource(sim, capacity=1, name="slot")

    def worker(delay):
        yield Delay(delay)
        try:
            yield res.request()
        finally:
            res.release()

    sim.spawn(worker(1.0), name="a")
    sim.spawn(worker(2.0), name="b")
    sim.run()
    # Cross-timestamp pairs are never even compared.
    assert sim.race.pairs_checked == 0
