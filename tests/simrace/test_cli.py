"""`repro race` CLI: exit codes, formats, cache flags, SARIF rendering."""

import json
import subprocess
import sys
from pathlib import Path

from repro.simrace.certify import Certificate
from repro.simrace.formats import render_certificates

REPO = Path(__file__).resolve().parents[2]


def _run(*args, module="repro.simrace"):
    return subprocess.run(
        [sys.executable, "-m", module, *args],
        capture_output=True,
        text=True,
        cwd=REPO,
    )


def test_list_prints_ids_and_exits_zero(tmp_path):
    proc = _run("--list")
    assert proc.returncode == 0
    assert "fig08" in proc.stdout and "table1" in proc.stdout


def test_unknown_experiment_exits_2():
    proc = _run("not_a_fig")
    assert proc.returncode == 2
    assert "unknown experiment" in proc.stdout


def test_k_below_one_exits_2():
    proc = _run("fig08", "-k", "0")
    assert proc.returncode == 2
    assert "-k must be >= 1" in proc.stderr


def test_certify_one_driver_text(tmp_path):
    proc = _run("fig08", "-k", "2", "--cache-dir", str(tmp_path))
    assert proc.returncode == 0, proc.stderr
    assert "[invariant] fig08" in proc.stdout
    assert "1 schedule-invariant, 0 divergent" in proc.stdout
    # Second run serves from the certificate cache.
    again = _run("fig08", "-k", "2", "--cache-dir", str(tmp_path))
    assert again.returncode == 0
    assert "cached" in again.stderr


def test_json_output_file(tmp_path):
    out = tmp_path / "race.json"
    proc = _run("fig08", "-k", "1", "--no-cache", "-o", str(out),
                "--format", "json")
    assert proc.returncode == 0, proc.stderr
    doc = json.loads(out.read_text())
    (cert,) = doc["certificates"]
    assert cert["exp_id"] == "fig08"
    assert cert["schedule_invariant"] is True
    assert len(cert["seeds"]) == 1


def test_main_cli_race_passthrough(tmp_path):
    proc = _run("race", "fig08", "-k", "1", "--no-cache", module="repro")
    assert proc.returncode == 0, proc.stderr
    assert "[invariant] fig08" in proc.stdout
    bad = _run("race", "nope", module="repro")
    assert bad.returncode == 2


# -- SARIF rendering (divergent certs become SL850 findings) ------------------

def _divergent_cert():
    return Certificate(
        exp_id="fig08",
        title="t",
        schedule_invariant=False,
        k=4,
        base_seed=1,
        seeds=[9, 8, 7, 6],
        divergence={
            "seed": 9,
            "path": "$.result.series[0].y[1]",
            "baseline": "1.0",
            "permuted": "2.0",
        },
    )


def test_sarif_reports_divergent_drivers_as_sl850():
    doc = json.loads(render_certificates([_divergent_cert()], "sarif"))
    (run,) = doc["runs"]
    (result,) = run["results"]
    assert result["ruleId"] == "SL850"
    assert "not schedule-invariant" in result["message"]["text"]
    assert "seed 9" in result["message"]["text"]
    rules = {
        r["id"] for r in run["tool"]["driver"]["rules"]
    }
    assert "SL850" in rules


def test_sarif_is_empty_for_invariant_certs():
    cert = Certificate(
        exp_id="fig08", title="t", schedule_invariant=True,
        k=4, base_seed=1, seeds=[1, 2, 3, 4],
    )
    doc = json.loads(render_certificates([cert], "sarif"))
    assert doc["runs"][0]["results"] == []


def test_text_rendering_shows_divergence_details():
    text = render_certificates([_divergent_cert()], "text")
    assert "DIVERGES" in text
    assert "$.result.series[0].y[1]" in text
    assert "baseline: 1.0" in text
    assert "0 schedule-invariant, 1 divergent" in text
