"""Tie-break permutation: seeds, install/restore, legal reorderings."""

import pytest

from repro.simengine.queue import EventQueue, tie_break_seed
from repro.simrace import DEFAULT_SEED, permutation_seeds, tie_break_permutation


def _drain(q):
    out = []
    while q:
        out.append(q.pop()[1]())
    return out


def _queue_order(seed, pushes):
    """Pop order of ``pushes`` = [(time, label, key)] under ``seed``."""
    with tie_break_permutation(seed):
        q = EventQueue()
        for time, label, key in pushes:
            q.push(time, lambda label=label: label, key=key)
        return _drain(q)


# -- seed derivation ----------------------------------------------------------

def test_permutation_seeds_are_deterministic_and_distinct():
    a = permutation_seeds(DEFAULT_SEED, 4)
    b = permutation_seeds(DEFAULT_SEED, 4)
    assert a == b
    assert len(set(a)) == 4
    assert permutation_seeds(DEFAULT_SEED + 1, 4) != a


def test_permutation_seeds_rejects_k_below_one():
    with pytest.raises(ValueError):
        permutation_seeds(DEFAULT_SEED, 0)


# -- context manager ----------------------------------------------------------

def test_tie_break_permutation_installs_and_restores():
    assert tie_break_seed() is None
    with tie_break_permutation(123):
        assert tie_break_seed() == 123
        with tie_break_permutation(None):
            assert tie_break_seed() is None
        assert tie_break_seed() == 123
    assert tie_break_seed() is None


def test_restores_previous_seed_on_exception():
    with pytest.raises(RuntimeError):
        with tie_break_permutation(7):
            raise RuntimeError("boom")
    assert tie_break_seed() is None


# -- what a permutation may and may not reorder -------------------------------

SETUP_SIBLINGS = [(1.0, "a", None), (1.0, "b", None), (1.0, "c", None)]


def test_identity_is_insertion_order():
    assert _queue_order(None, SETUP_SIBLINGS) == ["a", "b", "c"]


def test_some_seed_reorders_same_parent_free_entries():
    # All three entries share parent -1 (pushed outside the run loop), so
    # they keep FIFO under *any* seed: the permutation shuffles across
    # parents, never within one.
    assert _queue_order(424242, SETUP_SIBLINGS) == ["a", "b", "c"]


def test_permutation_shuffles_across_parents():
    """Entries pushed by different executing events can swap; per-parent
    program order survives every seed."""

    def run(seed):
        with tie_break_permutation(seed):
            q = EventQueue()
            out = []

            def parent(tag):
                def push():
                    q.push(2.0, lambda: out.append(f"{tag}1"))
                    q.push(2.0, lambda: out.append(f"{tag}2"))
                return push

            q.push(1.0, parent("x"))
            q.push(1.0, parent("y"))
            while q:
                q.pop()[1]()
            return out

    identity = run(None)
    assert identity == ["x1", "x2", "y1", "y2"]
    orders = {tuple(run(seed)) for seed in permutation_seeds(DEFAULT_SEED, 8)}
    for order in orders:
        # Program order within each parent is a hard HB edge.
        assert order.index("x1") < order.index("x2")
        assert order.index("y1") < order.index("y2")
    # At least one of 8 seeds actually exercises the swap.
    assert ("y1", "y2", "x1", "x2") in orders or len(orders) > 1


def test_keyed_entries_are_immune_to_permutation():
    pushes = [
        (1.0, "unkeyed", None),
        (1.0, "second", "k2"),
        (1.0, "first", "k1"),
    ]
    for seed in [None, *permutation_seeds(DEFAULT_SEED, 4)]:
        order = _queue_order(seed, pushes)
        # Keyed entries fire first, in key order, under every seed.
        assert order == ["first", "second", "unkeyed"]


def test_spawn_key_pins_process_wakeups_under_every_seed():
    """`spawn(key=...)` tags every wakeup a process schedules, so two
    racing processes with distinct keys interleave identically under
    any permutation — the mechanism behind Comm.isend's keyed
    transfers (NIC/link arbitration order)."""
    from repro.simengine import Delay, Simulator

    def run(seed):
        with tie_break_permutation(seed):
            sim = Simulator()
            out = []

            def worker(tag):
                yield Delay(1.0)
                out.append(tag)
                yield Delay(1.0)
                out.append(tag.upper())

            # Spawn in anti-key order: the keys, not insertion, decide.
            sim.spawn(worker("b"), key="k2")
            sim.spawn(worker("a"), key="k1")
            sim.run()
            return out

    expected = run(None)
    assert expected == ["a", "b", "A", "B"]
    for seed in permutation_seeds(DEFAULT_SEED, 6):
        assert run(seed) == expected


def test_time_order_always_dominates():
    pushes = [(3.0, "late", None), (1.0, "early", None), (2.0, "mid", "z")]
    for seed in [None, *permutation_seeds(DEFAULT_SEED, 4)]:
        assert _queue_order(seed, pushes) == ["early", "mid", "late"]
