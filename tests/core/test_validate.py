"""Tests for shape-check primitives."""

import pytest

from repro.core import ShapeCheck, ShapeCheckFailure


def test_expect_records_pass_and_fail():
    c = ShapeCheck("x")
    assert c.expect("good", True)
    assert not c.expect("bad", False, "detail")
    assert not c.passed
    assert c.failures == ["[x] bad: detail"]


def test_failure_messages_are_actionable():
    """Each failure line carries experiment id, expected vs actual, tolerance."""
    c = ShapeCheck("fig08")
    c.expect_close("gflops", 2.0, 1.0, rel=0.1)
    c.expect_ratio("speedup", 20, 10, 1.1, 1.3)
    c.expect_greater("xt4-wins", 1.0, 2.0, margin=1.5)
    c.expect_monotone("scaling", [1, 3, 2])
    c.expect_flat("weak", [1.0, 2.0], rel=0.3)
    assert len(c.failures) == 5
    for line in c.failures:
        assert line.startswith("[fig08] ")
        assert "expected" in line and "actual" in line
    assert "±0.1 rel" in c.failures[0]
    assert "in [1.1, 1.3]" in c.failures[1]
    assert "margin 1.5" in c.failures[2]
    assert "non-decreasing" in c.failures[3]
    assert "spread <= 0.3" in c.failures[4]


def test_expect_greater_with_margin():
    c = ShapeCheck("x")
    assert c.expect_greater("a", 10, 5)
    assert not c.expect_greater("b", 10, 9, margin=1.5)


def test_expect_ratio():
    c = ShapeCheck("x")
    assert c.expect_ratio("in", 12, 10, 1.1, 1.3)
    assert not c.expect_ratio("out", 20, 10, 1.1, 1.3)
    assert not c.expect_ratio("div0", 1, 0, 0, 2)


def test_expect_close():
    c = ShapeCheck("x")
    assert c.expect_close("ok", 1.05, 1.0, rel=0.1)
    assert not c.expect_close("no", 1.5, 1.0, rel=0.1)


def test_expect_monotone():
    c = ShapeCheck("x")
    assert c.expect_monotone("up", [1, 2, 3])
    assert not c.expect_monotone("not up", [1, 3, 2])
    assert c.expect_monotone("down", [3, 2, 1], increasing=False)
    assert c.expect_monotone("slack ok", [1.0, 0.99, 1.5], slack=0.02)


def test_expect_flat():
    c = ShapeCheck("x")
    assert c.expect_flat("flat", [1.0, 1.1, 0.95], rel=0.3)
    assert not c.expect_flat("not flat", [1.0, 2.0], rel=0.3)
    assert not c.expect_flat("empty", [])


def test_summary_and_raise():
    c = ShapeCheck("figZ")
    c.expect("ok", True)
    c.expect("broken", False, "why")
    assert "PASS" in c.summary() and "FAIL" in c.summary()
    with pytest.raises(ShapeCheckFailure, match="figZ"):
        c.raise_if_failed()
    good = ShapeCheck("y")
    good.expect("ok", True)
    good.raise_if_failed()  # no exception
