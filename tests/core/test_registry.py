"""Tests for the experiment registry."""

import pytest

from repro.core import all_experiments, get_experiment
from repro.core.registry import (
    UnknownExperimentError,
    experiment_title,
    experiment_titles,
    register,
    resolve_ids,
)


PAPER_IDS = {
    "table1", "fig01", "fig02", "fig03", "fig04", "fig05", "fig06",
    "fig07", "fig08", "fig09", "fig10", "fig11", "fig12_13", "fig14",
    "fig15", "fig16", "fig17", "fig18", "fig19", "fig20", "fig21",
    "fig22", "fig23",
}

EXTENSION_IDS = {"ext_multicore", "ext_balance", "ext_resilience"}


def test_every_paper_artifact_is_registered():
    assert set(all_experiments()) == PAPER_IDS | EXTENSION_IDS


def test_get_experiment_returns_callable():
    drv = get_experiment("table1")
    result = drv()
    assert result.exp_id == "table1"


def test_unknown_experiment_raises():
    with pytest.raises(KeyError, match="unknown experiment"):
        get_experiment("fig99")


def test_double_registration_rejected():
    with pytest.raises(ValueError):
        register("table1")(lambda: None)


def test_every_experiment_has_a_registered_title():
    titles = experiment_titles()
    assert set(titles) == PAPER_IDS | EXTENSION_IDS
    assert all(titles.values()), "drivers registered without a title"


def test_registered_title_matches_driver_result():
    # The registry metadata exists so `repro list` can skip execution;
    # it must agree with what the driver actually returns.
    for exp_id in ("table1", "fig05"):
        result = get_experiment(exp_id)()
        assert experiment_title(exp_id) == result.title


def test_experiment_title_unknown_id():
    with pytest.raises(UnknownExperimentError, match="known:"):
        experiment_title("fig99")


def test_resolve_ids_defaults_to_all_in_order():
    assert resolve_ids(None) == all_experiments()
    assert resolve_ids([]) == all_experiments()


def test_resolve_ids_returns_registry_order():
    assert resolve_ids(["table1", "fig05", "fig02"]) == [
        "fig02", "fig05", "table1",
    ]


def test_resolve_ids_rejects_unknown():
    with pytest.raises(UnknownExperimentError, match="fig99"):
        resolve_ids(["fig05", "fig99"])
