"""Tests for the experiment registry."""

import pytest

from repro.core import all_experiments, get_experiment
from repro.core.registry import register


PAPER_IDS = {
    "table1", "fig01", "fig02", "fig03", "fig04", "fig05", "fig06",
    "fig07", "fig08", "fig09", "fig10", "fig11", "fig12_13", "fig14",
    "fig15", "fig16", "fig17", "fig18", "fig19", "fig20", "fig21",
    "fig22", "fig23",
}

EXTENSION_IDS = {"ext_multicore", "ext_balance", "ext_resilience"}


def test_every_paper_artifact_is_registered():
    assert set(all_experiments()) == PAPER_IDS | EXTENSION_IDS


def test_get_experiment_returns_callable():
    drv = get_experiment("table1")
    result = drv()
    assert result.exp_id == "table1"


def test_unknown_experiment_raises():
    with pytest.raises(KeyError, match="unknown experiment"):
        get_experiment("fig99")


def test_double_registration_rejected():
    with pytest.raises(ValueError):
        register("table1")(lambda: None)
