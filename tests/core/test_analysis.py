"""Tests for the balance-analysis helpers."""

import pytest

from repro.core.analysis import (
    balance_table,
    communication_compute_ratio,
    machine_balance,
    memory_crossover_intensity,
    roofline_rate_gflops,
)
from repro.machine import xt3, xt4
from repro.machine.configs import xt4_quadcore


def test_roofline_limits():
    m = xt4("SN")
    peak = m.node.processor.peak_gflops_per_core
    # Very high intensity approaches compute peak.
    assert roofline_rate_gflops(m, 1e6) == pytest.approx(peak, rel=0.01)
    # Very low intensity is bandwidth bound: rate ≈ intensity × bw.
    low = roofline_rate_gflops(m, 0.01)
    assert low < 0.1


def test_roofline_monotone_in_intensity():
    m = xt4("SN")
    rates = [roofline_rate_gflops(m, i) for i in (0.1, 1.0, 10.0, 100.0)]
    assert rates == sorted(rates)


def test_roofline_validation():
    with pytest.raises(ValueError):
        roofline_rate_gflops(xt4(), 0.0)


def test_crossover_moves_right_with_core_sharing():
    m = xt4("VN")
    one = memory_crossover_intensity(m, 1)
    two = memory_crossover_intensity(m, 2)
    assert two > one  # half the bandwidth -> need 2x the intensity


def test_xt4_better_memory_balance_than_xt3():
    b3 = machine_balance(xt3())
    b4 = machine_balance(xt4())
    # Per-socket bytes/flop *drops* with the dual core despite DDR2: the
    # core count grew faster than the memory — the paper's central tension.
    assert b4["memory_bytes_per_flop"] < b3["memory_bytes_per_flop"]
    # But network bytes/flop is roughly preserved by SeaStar2.
    assert b4["network_bytes_per_flop"] == pytest.approx(
        b3["network_bytes_per_flop"], rel=0.2
    )


def test_quadcore_balance_deteriorates_further():
    dual = machine_balance(xt4())
    quad = machine_balance(xt4_quadcore())
    assert quad["memory_bytes_per_flop"] < dual["memory_bytes_per_flop"]
    assert quad["network_bytes_per_flop"] < dual["network_bytes_per_flop"]


def test_flops_per_message_latency_drops_on_xt4():
    # Faster network + similar core speed: messages cost fewer flops.
    b3 = machine_balance(xt3())
    b4 = machine_balance(xt4())
    assert b4["flops_per_message_latency"] < b3["flops_per_message_latency"]


def test_balance_table_renders():
    from repro.core.report import render_table

    rows = balance_table([xt3(), xt4(), xt4_quadcore()])
    assert len(rows) == 3
    text = render_table(rows)
    assert "XT4-QC" in text


def test_communication_compute_ratio():
    r_small = communication_compute_ratio(xt4("SN"), 64, 1e9, 1e3)
    r_big = communication_compute_ratio(xt4("SN"), 64, 1e6, 1e6)
    assert r_small < r_big
    with pytest.raises(ValueError):
        communication_compute_ratio(xt4("SN"), 64, 0.0, 1e3)
