"""Tests for the CLI and the ASCII plot renderer."""

import pytest

from repro.__main__ import main
from repro.core import ExperimentResult
from repro.core.report import render_ascii_plot


def test_cli_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "fig08" in out and "table1" in out


def test_cli_run_pass(capsys):
    assert main(["run", "fig05"]) == 0
    out = capsys.readouterr().out
    assert "DGEMM" in out and "PASS" in out


def test_cli_run_with_plot(capsys):
    assert main(["run", "fig08", "--plot", "--logx"]) == 0
    out = capsys.readouterr().out
    assert "(log x)" in out


def test_cli_all_writes_csvs(tmp_path, capsys):
    assert main(["all", "--out", str(tmp_path)]) == 0
    files = list(tmp_path.glob("*.csv"))
    assert len(files) >= 23
    out = capsys.readouterr().out
    assert "[PASS]" in out and "[FAIL]" not in out


def test_cli_unknown_experiment():
    with pytest.raises(KeyError):
        main(["run", "fig99"])


def test_ascii_plot_renders_series():
    r = ExperimentResult("x", "T", xlabel="n", ylabel="v")
    r.add("a", [1, 2, 3, 4], [1.0, 2.0, 3.0, 4.0])
    r.add("b", [1, 2, 3, 4], [4.0, 3.0, 2.0, 1.0])
    text = render_ascii_plot(r, width=30, height=8)
    assert "T" in text
    assert "o a" in text and "x b" in text
    assert "o" in text.splitlines()[1] or "x" in text.splitlines()[1]


def test_ascii_plot_skips_categorical_series():
    r = ExperimentResult("x", "T")
    r.add("cat", ["a", "b"], [1.0, 2.0])
    assert "no numeric series" in render_ascii_plot(r)


def test_ascii_plot_constant_series():
    r = ExperimentResult("x", "T")
    r.add("flat", [1, 2], [5.0, 5.0])
    text = render_ascii_plot(r, width=20, height=5)
    assert "flat" in text
