"""Tests for the CLI and the ASCII plot renderer."""

import pytest

from repro.__main__ import main
from repro.core import ExperimentResult, registry
from repro.core.report import render_ascii_plot


def test_cli_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "fig08" in out and "table1" in out
    assert "Global High Performance LINPACK (HPL)" in out


def test_cli_list_executes_no_driver(capsys, monkeypatch):
    # Listing must be O(imports): titles come from registry metadata,
    # never from running the 26 simulated benchmark sweeps.
    registry._ensure_loaded()
    for exp_id in list(registry._REGISTRY):
        def bomb(exp_id=exp_id):
            raise AssertionError(f"driver {exp_id} executed by `list`")
        monkeypatch.setitem(registry._REGISTRY, exp_id, bomb)
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "fig05" in out and "SP/EP Matrix Multiply (DGEMM)" in out


def test_cli_run_pass(capsys):
    assert main(["run", "fig05"]) == 0
    out = capsys.readouterr().out
    assert "DGEMM" in out and "PASS" in out


def test_cli_run_with_plot(capsys):
    assert main(["run", "fig08", "--plot", "--logx"]) == 0
    out = capsys.readouterr().out
    assert "(log x)" in out


def test_cli_all_writes_csvs_and_txt(tmp_path, capsys):
    out_dir = tmp_path / "out"
    cache_dir = tmp_path / "cache"
    assert main([
        "all", "--out", str(out_dir), "--cache-dir", str(cache_dir),
    ]) == 0
    csvs = list(out_dir.glob("*.csv"))
    txts = list(out_dir.glob("*.txt"))
    assert len(csvs) >= 23
    assert {p.stem for p in txts} == {p.stem for p in csvs}
    out = capsys.readouterr().out
    assert "[PASS]" in out and "[FAIL]" not in out
    assert "26 misses" in out


def test_cli_all_warm_cache_is_byte_identical(tmp_path, capsys):
    cache_dir = str(tmp_path / "cache")
    args = ["--only", "fig05,table1", "--cache-dir", cache_dir]
    assert main(["all", "--out", str(tmp_path / "o1")] + args) == 0
    assert main(["all", "--out", str(tmp_path / "o2")] + args) == 0
    out = capsys.readouterr().out
    assert "2 hits, 0 misses" in out
    for p in sorted((tmp_path / "o1").iterdir()):
        assert p.read_bytes() == (tmp_path / "o2" / p.name).read_bytes()


def test_cli_all_report(tmp_path):
    import json

    report = tmp_path / "report.json"
    assert main([
        "all", "--only", "table1", "--out", str(tmp_path / "o"),
        "--cache-dir", str(tmp_path / "c"), "--report", str(report),
    ]) == 0
    data = json.loads(report.read_text())
    assert data["misses"] == 1 and data["hits"] == 0
    assert data["experiments"][0]["exp_id"] == "table1"
    assert data["experiments"][0]["status"] == "PASS"


def test_cli_unknown_experiment(capsys):
    # A typo'd id is a user error with a helpful message and exit code
    # 2 — not an uncaught KeyError traceback.
    assert main(["run", "fig99"]) == 2
    out = capsys.readouterr().out
    assert "unknown experiment 'fig99'" in out and "known:" in out


def test_cli_all_only_unknown_experiment(tmp_path, capsys):
    assert main([
        "all", "--only", "fig99", "--out", str(tmp_path / "o"),
    ]) == 2
    out = capsys.readouterr().out
    assert "unknown experiment 'fig99'" in out and "known:" in out
    assert not (tmp_path / "o" / "fig99.csv").exists()


def test_ascii_plot_renders_series():
    r = ExperimentResult("x", "T", xlabel="n", ylabel="v")
    r.add("a", [1, 2, 3, 4], [1.0, 2.0, 3.0, 4.0])
    r.add("b", [1, 2, 3, 4], [4.0, 3.0, 2.0, 1.0])
    text = render_ascii_plot(r, width=30, height=8)
    assert "T" in text
    assert "o a" in text and "x b" in text
    assert "o" in text.splitlines()[1] or "x" in text.splitlines()[1]


def test_ascii_plot_skips_categorical_series():
    r = ExperimentResult("x", "T")
    r.add("cat", ["a", "b"], [1.0, 2.0])
    assert "no numeric series" in render_ascii_plot(r)


def test_ascii_plot_constant_series():
    r = ExperimentResult("x", "T")
    r.add("flat", [1, 2], [5.0, 5.0])
    text = render_ascii_plot(r, width=20, height=5)
    assert "flat" in text
