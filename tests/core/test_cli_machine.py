"""Tests for the `repro machine` CLI subcommand."""

import json

import pytest

from repro.__main__ import main


def test_machine_default(capsys):
    assert main(["machine"]) == 0
    out = capsys.readouterr().out
    assert "XT4-SN" in out
    assert "pp_latency_min_us" in out


def test_machine_vn_mode(capsys):
    assert main(["machine", "xt4", "--mode", "VN"]) == 0
    assert "XT4-VN" in capsys.readouterr().out


def test_machine_save_and_load(tmp_path, capsys):
    path = tmp_path / "m.json"
    assert main(["machine", "xt3", "--save", str(path)]) == 0
    data = json.loads(path.read_text())
    assert data["name"] == "XT3"
    capsys.readouterr()
    assert main(["machine", "--load", str(path)]) == 0
    assert "XT3" in capsys.readouterr().out


def test_machine_audit_flag(capsys):
    assert main(["machine", "xt4", "--audit"]) == 0
    assert "calibration register" in capsys.readouterr().out


def test_machine_unknown_name(capsys):
    assert main(["machine", "cray-2"]) == 2
    assert "unknown machine" in capsys.readouterr().out
