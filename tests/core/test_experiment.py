"""Tests for the experiment framework containers and reports."""

import pytest

from repro.core import ExperimentResult, Series, render_csv, render_table
from repro.core.metrics import GBs, GFLOPS, GUPS, TFLOPS, format_quantity, us
from repro.core.report import render_result


def test_series_length_validation():
    with pytest.raises(ValueError):
        Series("s", [1, 2], [1.0])


def test_series_value_at():
    s = Series("s", ["a", "b"], [1.0, 2.0])
    assert s.value_at("b") == 2.0
    with pytest.raises(KeyError):
        s.value_at("c")
    assert s.last == 2.0


def test_empty_series_last_raises():
    with pytest.raises(ValueError):
        Series("s", [], []).last


def test_result_add_and_get():
    r = ExperimentResult("x", "title")
    r.add("a", [1, 2], [3, 4])
    assert r.labels == ["a"]
    assert r.get_series("a").y == [3.0, 4.0]
    with pytest.raises(KeyError):
        r.get_series("b")


def test_metrics_units():
    assert us(1.5e-6) == pytest.approx(1.5)
    assert GBs(2.0e9) == 2.0
    assert GFLOPS(3.0e9) == 3.0
    assert TFLOPS(4.0e12) == 4.0
    assert GUPS(5.0e9) == 5.0


def test_format_quantity():
    assert format_quantity(0, "us") == "0 us"
    assert format_quantity(4.5, "us") == "4.5 us"
    assert format_quantity(150.4, "GB/s") == "150 GB/s"


def test_render_table_alignment():
    out = render_table([{"a": 1, "b": "xx"}, {"a": 22, "b": "y"}], title="T")
    lines = out.splitlines()
    assert lines[0] == "T"
    assert "a" in lines[1] and "b" in lines[1]
    assert len(lines) == 5


def test_render_table_empty():
    assert "(empty)" in render_table([])


def test_render_csv_series_long_format():
    r = ExperimentResult("x", "t")
    r.add("s1", [1, 2], [3.0, 4.0])
    csv = render_csv(r)
    assert csv.splitlines()[0] == "series,x,y"
    assert "s1,1,3.0" in csv


def test_render_csv_rows():
    r = ExperimentResult("x", "t", rows=[{"k": 1, "v": "a"}])
    csv = render_csv(r)
    assert csv.splitlines() == ["k,v", "1,a"]


def test_render_result_includes_everything():
    r = ExperimentResult("figX", "The Title", xlabel="n", ylabel="GB/s",
                         notes="a note")
    r.add("s", [1], [2.0])
    out = render_result(r)
    assert "figX" in out and "The Title" in out and "a note" in out
    assert "[s]" in out
