"""Tests for scaling-study helpers."""

import pytest

from repro.apps.pop import POPModel
from repro.core.scaling import (
    crossover_tasks,
    karp_flatt,
    parallel_fraction_fit,
    strong_scaling_table,
    weak_scaling_table,
)
from repro.machine import xt4


def amdahl(serial=1.0, parallel=100.0):
    return lambda p: serial + parallel / p


def test_strong_scaling_perfect_code():
    rows = strong_scaling_table(lambda p: 100.0 / p, [1, 2, 4, 8])
    assert rows[-1]["speedup"] == pytest.approx(8.0)
    assert all(r["efficiency"] == pytest.approx(1.0) for r in rows)


def test_strong_scaling_amdahl_efficiency_decays():
    rows = strong_scaling_table(amdahl(), [1, 4, 16, 64])
    effs = [r["efficiency"] for r in rows]
    assert effs == sorted(effs, reverse=True)
    assert effs[-1] < 0.7


def test_strong_scaling_validation():
    with pytest.raises(ValueError):
        strong_scaling_table(lambda p: 1.0, [])


def test_weak_scaling_flat_for_ideal_code():
    rows = weak_scaling_table(lambda p: 10.0, [1, 8, 64])
    assert all(r["efficiency"] == pytest.approx(1.0) for r in rows)


def test_karp_flatt_recovers_serial_fraction():
    # t(p) = f + (1-f)/p with f = 0.05, unit total work.
    f = 0.05
    t = lambda p: f + (1 - f) / p
    for p in (4, 16, 64):
        speedup = t(1) / t(p)
        assert karp_flatt(speedup, p) == pytest.approx(f, rel=1e-9)


def test_karp_flatt_validation():
    with pytest.raises(ValueError):
        karp_flatt(2.0, 1)
    with pytest.raises(ValueError):
        karp_flatt(0.0, 4)


def test_crossover_found():
    a = lambda p: 10.0  # flat
    b = lambda p: p / 4.0  # linear
    assert crossover_tasks(a, b, [8, 16, 32, 64, 128]) == 64
    assert crossover_tasks(a, b, [8, 16]) is None


def test_parallel_fraction_fit_recovers_amdahl():
    fn = amdahl(serial=2.5, parallel=80.0)
    serial, parallel = parallel_fraction_fit(fn, 2, 32)
    assert serial == pytest.approx(2.5)
    assert parallel == pytest.approx(80.0)
    with pytest.raises(ValueError):
        parallel_fraction_fit(fn, 8, 8)


def test_pop_karp_flatt_rises_with_scale():
    """POP's 'serial fraction' rises with p: it is not serial code but the
    latency-bound barotropic phase masquerading as one (paper §6.2)."""
    time_fn = lambda p: POPModel(xt4("VN"), p).seconds_per_simulated_day()
    base = time_fn(500)
    e_small = karp_flatt(base / time_fn(2000), 4)
    e_large = karp_flatt(base / time_fn(8000), 16)
    assert e_large > e_small
