"""Tests for deterministic RNG streams."""
# simlint: ignore-file[SL804] — seeded_rng determinism tests deliberately
# reuse one stream name across functions to compare its sequences.

import numpy as np

from repro.simengine import seeded_rng


def test_same_seed_same_stream_reproduces():
    a = seeded_rng(1, "net").random(16)
    b = seeded_rng(1, "net").random(16)
    assert np.array_equal(a, b)


def test_different_streams_differ():
    a = seeded_rng(1, "net").random(16)
    b = seeded_rng(1, "mem").random(16)
    assert not np.array_equal(a, b)


def test_different_seeds_differ():
    a = seeded_rng(1, "net").random(16)
    b = seeded_rng(2, "net").random(16)
    assert not np.array_equal(a, b)


def test_default_seed_is_stable():
    a = seeded_rng().random(4)
    b = seeded_rng().random(4)
    assert np.array_equal(a, b)
