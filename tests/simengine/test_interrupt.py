"""Interrupt edge cases and the timeout/retry helpers.

An interrupt can land while a process is queued on a resource, sleeping
on a delay, mid-transfer, or already finished — every case must leave the
engine's bookkeeping exact (no leaked slots, no stale wakeups, no
stretched clock). These are the failure modes the fault-injection layer
leans on.
"""
# Holders here deliberately omit try/finally: interrupt delivery into
# a bare hold is exactly what these tests exercise.
# simlint: ignore-file[SL501]

import pytest

from repro.simengine import (
    Delay,
    Interrupt,
    Resource,
    RetryExhausted,
    SimTimeout,
    Simulator,
    Store,
    retry,
    with_timeout,
)


# -- interrupt while queued on a resource ------------------------------------

def test_interrupt_while_queued_on_resource_does_not_leak_slots():
    """The queued grant is abandoned: the slot later goes to someone else
    and the sanitizer's conservation check stays green."""
    sim = Simulator(sanitize=True)
    res = Resource(sim, capacity=1, name="nic")
    order = []

    def holder():
        yield res.request()
        try:
            yield Delay(2.0)
        finally:
            res.release()
        order.append("holder")

    def victim():
        try:
            yield res.request()
            pytest.fail("victim should have been interrupted while queued")
        except Interrupt:
            order.append("victim-interrupted")

    def straggler():
        yield Delay(1.5)
        yield res.request()
        try:
            order.append(f"straggler-granted@{sim.now}")
        finally:
            res.release()

    sim.spawn(holder(), name="holder")
    victim_proc = sim.spawn(victim(), name="victim")
    sim.spawn(straggler(), name="straggler")

    def interrupter():
        yield Delay(1.0)
        victim_proc.interrupt("fault")

    sim.spawn(interrupter(), name="interrupter")
    sim.run()  # sanitize: raises ResourceLeakError on any leaked slot
    # release() hands the slot to the waiter synchronously, so the
    # straggler's grant lands before the holder's own epilogue runs.
    assert order == ["victim-interrupted", "straggler-granted@2.0", "holder"]
    assert res.in_use == 0 and res.queue_length == 0


def test_interrupt_while_holding_slot_releases_via_finally():
    sim = Simulator(sanitize=True)
    res = Resource(sim, capacity=1, name="port")

    def holder():
        yield res.request()
        try:
            yield Delay(10.0)
        except Interrupt:
            pass
        finally:
            res.release()

    proc = sim.spawn(holder(), name="holder")

    def interrupter():
        yield Delay(1.0)
        proc.interrupt()

    sim.spawn(interrupter(), name="interrupter")
    sim.run()
    assert res.in_use == 0 and res.outstanding == 0


def test_interrupted_use_helper_is_slot_exact():
    """Resource.use() must survive an interrupt in either phase (queued
    or holding) without leaking or over-releasing."""
    sim = Simulator(sanitize=True)
    res = Resource(sim, capacity=1, name="ch")

    def blocker():
        yield from res.use(5.0)

    def user():
        try:
            yield from res.use(1.0)
        except Interrupt:
            pass

    sim.spawn(blocker(), name="blocker")
    queued = sim.spawn(user(), name="queued")  # interrupted while waiting

    def interrupter():
        yield Delay(1.0)
        queued.interrupt()

    sim.spawn(interrupter(), name="interrupter")
    sim.run()
    assert res.in_use == 0 and res.queue_length == 0


# -- interrupt during a delay -------------------------------------------------

def test_interrupt_during_delay_resumes_immediately_and_cancels_timer():
    """The process handles the Interrupt at the interrupt time, and the
    abandoned sleep does not keep the clock running to its original end."""
    sim = Simulator()
    seen = {}

    def sleeper():
        try:
            yield Delay(100.0)
        except Interrupt as exc:
            seen["t"] = sim.now
            seen["cause"] = exc.cause
        yield Delay(1.0)

    proc = sim.spawn(sleeper(), name="sleeper")

    def interrupter():
        yield Delay(3.0)
        proc.interrupt("node-crash")

    sim.spawn(interrupter(), name="interrupter")
    end = sim.run()
    assert seen == {"t": 3.0, "cause": "node-crash"}
    # 3.0 (interrupt) + 1.0 (follow-up delay); NOT 100.0: the stale timer
    # entry was cancelled when the interrupt diverted the process.
    assert end == 4.0


def test_stale_delay_wakeup_does_not_double_resume():
    """After an interrupt diverts the process into a new wait, the old
    delay's pending wakeup is cancelled — the process steps once per
    wait, and the dead sleep does not stretch the run."""
    sim = Simulator()
    steps = []

    def worker():
        try:
            yield Delay(5.0)
            steps.append("long-done")
        except Interrupt:
            steps.append(f"interrupted@{sim.now}")
        yield Delay(5.0)
        steps.append(f"second-done@{sim.now}")

    proc = sim.spawn(worker(), name="worker")

    def interrupter():
        yield Delay(2.0)  # diverts the worker mid-sleep
        proc.interrupt()

    sim.spawn(interrupter(), name="interrupter")
    end = sim.run()
    assert steps == ["interrupted@2.0", "second-done@7.0"]
    assert end == 7.0  # not 5.0+: the original sleep entry is gone


def test_stale_event_wakeup_is_dropped_by_epoch_guard():
    """An event the process was diverted away from may still trigger
    later; its callback must not double-resume the process."""
    sim = Simulator()
    evt = None
    steps = []

    def worker():
        nonlocal evt
        evt = sim.event(name="signal")
        try:
            yield evt
            steps.append("signalled")
        except Interrupt:
            steps.append(f"interrupted@{sim.now}")
        yield Delay(2.0)
        steps.append(f"done@{sim.now}")

    proc = sim.spawn(worker(), name="worker")

    def interrupter():
        yield Delay(1.0)
        proc.interrupt()
        # The event fires anyway, *after* the interrupt diverts the
        # worker (FIFO at the same timestamp): the stale callback must be
        # swallowed, not resume the worker a second time.
        sim.schedule(0.0, lambda: evt.succeed("late"))

    sim.spawn(interrupter(), name="interrupter")
    end = sim.run()
    assert steps == ["interrupted@1.0", "done@3.0"]
    assert end == 3.0


# -- interrupt of finished / killed processes ---------------------------------

def test_interrupt_of_finished_process_is_a_noop():
    sim = Simulator()

    def quick():
        yield Delay(1.0)
        return 42

    proc = sim.spawn(quick(), name="quick")
    sim.run()
    assert not proc.alive and proc.done.value == 42
    proc.interrupt("too late")  # must not raise or reanimate
    sim.run()
    assert proc.done.value == 42 and not proc.done.failed


def test_interrupt_scheduled_before_natural_finish_at_same_time():
    """An interrupt queued at the same timestamp the process finishes:
    whichever fires first wins, the other is ignored — never an error."""
    sim = Simulator()

    def quick():
        yield Delay(1.0)
        return "ok"

    proc = sim.spawn(quick(), name="quick")

    def interrupter():
        yield Delay(1.0)
        proc.interrupt()

    sim.spawn(interrupter(), name="interrupter")
    sim.run()
    assert not proc.alive


# -- interrupt while waiting on a store ---------------------------------------

def test_interrupt_while_waiting_on_store_does_not_eat_messages():
    """The abandoned getter is withdrawn, so a later put goes to the next
    live consumer instead of vanishing into a dead process."""
    sim = Simulator(sanitize=True)
    store = Store(sim, name="inbox")
    got = []

    def victim():
        try:
            yield store.get()
            pytest.fail("victim should have been interrupted")
        except Interrupt:
            pass

    def survivor():
        yield Delay(2.0)
        msg = yield store.get()
        got.append(msg)

    vproc = sim.spawn(victim(), name="victim")
    sim.spawn(survivor(), name="survivor")

    def driver():
        yield Delay(1.0)
        vproc.interrupt()
        yield Delay(2.0)
        store.put("payload")

    sim.spawn(driver(), name="driver")
    sim.run()
    assert got == ["payload"]
    assert len(store) == 0


# -- with_timeout / retry helpers ---------------------------------------------

def test_with_timeout_event_wins():
    sim = Simulator()
    out = {}

    def waiter():
        ok, value = yield from with_timeout(
            sim, sim.timeout_event(1.0, value="fast"), 5.0
        )
        out["result"] = (ok, value)

    sim.spawn(waiter(), name="waiter")
    end = sim.run()
    assert out["result"] == (True, "fast")
    # The losing internal timer was cancelled: the clock stops at 1.0.
    assert end == 1.0


def test_with_timeout_expires_and_abandons_the_wait():
    sim = Simulator(sanitize=True)
    res = Resource(sim, capacity=1, name="busy")
    out = {}

    def holder():
        yield from res.use(10.0)

    def impatient():
        ok, value = yield from with_timeout(sim, res.request(), 2.0)
        out["result"] = (ok, value)

    sim.spawn(holder(), name="holder")
    sim.spawn(impatient(), name="impatient")
    sim.run()
    assert out["result"] == (False, None)
    # The timed-out request was withdrawn from the queue (no leak).
    assert res.in_use == 0 and res.queue_length == 0


def test_with_timeout_rejects_negative():
    sim = Simulator()
    with pytest.raises(ValueError):
        list(with_timeout(sim, sim.event(), -1.0))


def test_retry_backs_off_deterministically_then_succeeds():
    sim = Simulator()
    attempts = []

    def flaky(i):
        attempts.append((i, sim.now))
        if i < 2:
            raise SimTimeout(0.5, "flaky op")
        return "done"

    def proc():
        result = yield from retry(
            flaky, attempts=4, base_backoff_s=1.0, backoff_factor=2.0  # simlint: ignore[SL303] — backoff is the test vector
        )
        return result

    p = sim.spawn(proc(), name="retrier")
    sim.run()
    assert p.done.value == "done"
    # Backoffs: 1.0 after attempt 0, 2.0 after attempt 1 (exponential).
    assert attempts == [(0, 0.0), (1, 1.0), (2, 3.0)]


def test_retry_exhaustion_chains_last_error():
    sim = Simulator()

    def always_fails(i):
        raise SimTimeout(0.1, f"attempt {i}")

    failures = {}

    def proc():
        try:
            yield from retry(always_fails, attempts=3, base_backoff_s=0.1)  # simlint: ignore[SL303] — backoff is the test vector
        except RetryExhausted as exc:
            failures["attempts"] = exc.attempts
            failures["cause"] = str(exc.__cause__)

    sim.spawn(proc(), name="retrier")
    sim.run()
    assert failures["attempts"] == 3
    assert "attempt 2" in failures["cause"]


def test_retry_drives_generator_attempts():
    sim = Simulator()

    def gen_attempt(i):
        yield Delay(1.0)
        if i == 0:
            raise SimTimeout(1.0, "first try")
        return sim.now

    def proc():
        t = yield from retry(gen_attempt, attempts=2)
        return t

    p = sim.spawn(proc(), name="retrier")
    sim.run()
    assert p.done.value == 2.0  # two 1s attempts, no backoff configured

    with pytest.raises(ValueError):
        list(retry(gen_attempt, attempts=0))

    calls = []

    def non_retryable(i):
        calls.append(i)
        raise KeyError("other")

    def proc2():
        yield from retry(non_retryable, attempts=5)

    sim.spawn(proc2(), name="retrier2")
    with pytest.raises(KeyError):
        sim.run()  # exceptions outside retry_on propagate immediately
    assert calls == [0]  # no retries were attempted


# -- freeze ------------------------------------------------------------------

def test_freeze_postpones_everything_uniformly():
    sim = Simulator()
    times = {}

    def worker(name, dt):
        yield Delay(dt)
        times[name] = sim.now

    sim.spawn(worker("a", 1.0), name="a")
    sim.spawn(worker("b", 2.0), name="b")
    sim.schedule(0.5, lambda: sim.freeze(10.0))
    sim.run()
    assert times == {"a": 11.0, "b": 12.0}


def test_freeze_preserves_fifo_tie_order():
    sim = Simulator()
    order = []

    def worker(tag):
        yield Delay(1.0)
        order.append(tag)

    for tag in ("first", "second", "third"):
        sim.spawn(worker(tag), name=tag)
    sim.schedule(0.5, lambda: sim.freeze(3.0))
    sim.run()
    assert order == ["first", "second", "third"]


def test_freeze_rejects_negative():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.freeze(-1.0)
