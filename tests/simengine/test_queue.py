"""Unit tests for the pending-event queue."""

import pytest
from hypothesis import given, strategies as st

from repro.simengine.queue import EventQueue


def test_empty_queue_pop_raises():
    q = EventQueue()
    with pytest.raises(IndexError):
        q.pop()


def test_empty_queue_is_falsy():
    q = EventQueue()
    assert not q
    assert len(q) == 0
    assert q.peek_time() is None


def test_orders_by_time():
    q = EventQueue()
    out = []
    q.push(3.0, lambda: out.append("c"))
    q.push(1.0, lambda: out.append("a"))
    q.push(2.0, lambda: out.append("b"))
    while q:
        _, cb = q.pop()
        cb()
    assert out == ["a", "b", "c"]


def test_fifo_among_equal_times():
    q = EventQueue()
    out = []
    for i in range(10):
        q.push(5.0, lambda i=i: out.append(i))
    while q:
        q.pop()[1]()
    assert out == list(range(10))


def test_cancel_skips_entry():
    q = EventQueue()
    keep = q.push(1.0, lambda: "keep")
    drop = q.push(0.5, lambda: "drop")
    q.cancel(drop)
    assert len(q) == 1
    t, cb = q.pop()
    assert t == 1.0
    assert cb() == "keep"
    assert not q


def test_cancel_twice_is_idempotent():
    q = EventQueue()
    e = q.push(1.0, lambda: None)
    q.cancel(e)
    q.cancel(e)
    assert len(q) == 0


def test_peek_time_skips_cancelled_head():
    q = EventQueue()
    head = q.push(0.0, lambda: None)
    q.push(2.0, lambda: None)
    q.cancel(head)
    assert q.peek_time() == 2.0


@given(st.lists(st.floats(min_value=0, max_value=1e6, allow_nan=False), max_size=200))
def test_pop_order_is_sorted(times):
    q = EventQueue()
    for t in times:
        q.push(t, lambda: None)
    popped = []
    while q:
        popped.append(q.pop()[0])
    assert popped == sorted(times)


@given(
    st.lists(
        st.tuples(st.floats(min_value=0, max_value=100, allow_nan=False), st.booleans()),
        max_size=100,
    )
)
def test_cancellation_property(entries):
    """Live count and pop sequence respect cancellations."""
    q = EventQueue()
    handles = [(q.push(t, lambda: None), t, cancel) for t, cancel in entries]
    expected = sorted(t for _, t, cancel in handles if not cancel)
    for h, _, cancel in handles:
        if cancel:
            q.cancel(h)
    assert len(q) == len(expected)
    got = []
    while q:
        got.append(q.pop()[0])
    assert got == expected
