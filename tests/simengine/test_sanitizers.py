"""Runtime sanitizers: deadlock detection and resource conservation."""

import pytest

from repro.machine import xt4
from repro.mpi import MPIJob
from repro.simengine import (
    Delay,
    Resource,
    ResourceLeakError,
    SimDeadlockError,
    Simulator,
    Store,
)


# -- deadlock detector -------------------------------------------------------

def test_blocked_store_get_is_reported():
    sim = Simulator(sanitize=True)
    store = Store(sim, name="mailbox")

    def consumer():
        msg = yield store.get()
        return msg

    sim.spawn(consumer(), name="consumer")
    with pytest.raises(SimDeadlockError) as exc:
        sim.run()
    assert exc.value.blocked == {"consumer": "mailbox.get"}
    assert "consumer" in str(exc.value) and "mailbox.get" in str(exc.value)
    assert "at t=0" in str(exc.value)  # simulated time of the deadlock


def test_deadlock_error_reports_simulated_time():
    sim = Simulator(sanitize=True)
    store = Store(sim, name="mailbox")

    def consumer():
        yield Delay(2.5)
        msg = yield store.get()
        return msg

    sim.spawn(consumer(), name="consumer")
    with pytest.raises(SimDeadlockError, match="at t=2.5s"):
        sim.run()


def test_mismatched_collective_reports_blocked_ranks_and_stores():
    """Rank 0 skips the allreduce: the sanitizer names every blocked rank
    and what it waits on (the collective rendezvous / rank 0's inbox)."""

    def main(comm):
        if comm.rank == 0:  # simlint: ignore[collective] — deliberate bug under test
            data = yield from comm.recv(source=1, tag=99)  # never sent
            return data
        total = yield from comm.allreduce(comm.rank)  # simlint: ignore[SL402] — deliberate bug under test
        return total

    with pytest.raises(SimDeadlockError) as exc:
        MPIJob(xt4("SN"), 8, sanitize=True).run(main)
    blocked = exc.value.blocked
    assert blocked["rank0"] == "inbox[0].get"
    for rank in range(1, 8):
        assert blocked[f"rank{rank}"] == "coll:allreduce"


def test_unsanitized_job_keeps_generic_deadlock_error():
    def main(comm):
        if comm.rank == 0:  # simlint: ignore[collective] — deliberate bug under test
            return None
        yield from comm.barrier()  # simlint: ignore[collective]
        return None

    with pytest.raises(RuntimeError, match="job deadlocked"):
        MPIJob(xt4("SN"), 4).run(main)


def test_no_deadlock_error_on_clean_completion():
    def main(comm):
        total = yield from comm.allreduce(1.0)
        yield from comm.barrier()
        return total

    result = MPIJob(xt4("SN"), 4, sanitize=True).run(main)
    assert result.returns == [4.0] * 4


def test_bounded_run_skips_the_quiescence_check():
    """run(until=...) may drain the queue while a process legitimately
    waits for an externally-triggered event; no deadlock is reported."""
    sim = Simulator(sanitize=True)
    evt = sim.event(name="external")

    def waiter():
        value = yield evt
        return value

    proc = sim.spawn(waiter(), name="waiter")
    sim.run(until=1.0)
    assert proc.alive
    evt.succeed("late")
    sim.run()
    assert proc.done.value == "late"


def test_waiting_on_tracks_delay_and_clears():
    sim = Simulator(sanitize=True)

    def sleeper():
        yield Delay(2.0)
        return "ok"

    proc = sim.spawn(sleeper(), name="sleeper")
    sim.run(until=1.0)
    assert proc.waiting_on == "Delay(2)"
    sim.run()
    assert proc.waiting_on is None and proc.done.value == "ok"


# -- resource conservation ---------------------------------------------------

def test_leaked_resource_slot_is_reported():
    sim = Simulator(sanitize=True)
    res = Resource(sim, capacity=2, name="nic-port")

    def leaker():
        yield res.request()  # simlint: ignore[SL501] — the leak is the subject under test
        yield Delay(1.0)
        # missing res.release()

    sim.spawn(leaker(), name="leaker")
    with pytest.raises(ResourceLeakError, match=r"at t=1s.*nic-port.*1/2"):
        sim.run()


def test_balanced_use_passes_and_counts_grants():
    sim = Simulator(sanitize=True)
    res = Resource(sim, capacity=1, name="port")

    def worker():
        yield from res.use(1.0)

    sim.spawn(worker(), name="a")
    sim.spawn(worker(), name="b")
    sim.run()
    assert res.in_use == 0
    assert res.outstanding == 0


def test_release_of_idle_resource_still_raises():
    sim = Simulator(sanitize=True)
    res = Resource(sim, capacity=1, name="port")
    with pytest.raises(RuntimeError, match="idle resource"):
        res.release()
