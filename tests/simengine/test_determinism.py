"""Determinism guarantees: rng.fork streams and bit-identical replays."""
# simlint: ignore-file[SL804] — these tests deliberately fork the same
# stream name across functions to assert fork() reproducibility.

import numpy as np

from repro.machine import xt4
from repro.mpi import MPIJob, profiled_job_run
from repro.simengine.rng import DEFAULT_SEED, fork, seeded_rng

import pytest


# -- fork(stream_name) -------------------------------------------------------

def test_fork_same_stream_same_seed_is_identical():
    a = fork("placement", seed=123).random(16)
    b = fork("placement", seed=123).random(16)
    assert np.array_equal(a, b)


def test_fork_distinct_streams_are_independent():
    a = fork("placement", seed=123).random(16)
    b = fork("ring-order", seed=123).random(16)
    assert not np.array_equal(a, b)


def test_fork_defaults_to_repo_seed():
    assert np.array_equal(
        fork("x").random(8), fork("x", seed=DEFAULT_SEED).random(8)
    )


def test_fork_matches_seeded_rng_stream():
    assert np.array_equal(
        fork("s3d", seed=7).random(8), seeded_rng(7, stream="s3d").random(8)
    )


def test_fork_rejects_anonymous_stream():
    with pytest.raises(ValueError, match="stream name"):
        fork("")


# -- replay determinism ------------------------------------------------------

def _pingpong_trace(seed):
    """Run an 8-rank neighbour ping-pong under tracing; return the full
    event/trace sequence and per-rank completion times."""

    def main(comm, iters=4, nbytes=4096):
        peer = comm.rank ^ 1  # pair (0,1), (2,3), ...
        for _ in range(iters):
            if comm.rank % 2 == 0:
                yield from comm.send(b"x" * nbytes, dest=peer)
                yield from comm.recv(source=peer)
            else:
                yield from comm.recv(source=peer)
                yield from comm.send(b"x" * nbytes, dest=peer)
        yield from comm.barrier()
        return comm.wtime()

    job = MPIJob(xt4("VN"), 8, placement="random", seed=seed)
    result, profiles = profiled_job_run(job, main, trace=True)
    trace = [
        (rank, ev.op, ev.t0, ev.t1, ev.nbytes)
        for rank in sorted(profiles)
        for ev in profiles[rank].events
    ]
    return trace, result.rank_times, result.elapsed_s


def test_same_seed_gives_bit_identical_trace():
    """Two full simulator runs of the same 8-rank job replay the exact
    event sequence — same ops, same timestamps, same payloads."""
    trace1, times1, elapsed1 = _pingpong_trace(seed=42)
    trace2, times2, elapsed2 = _pingpong_trace(seed=42)
    assert trace1 == trace2          # bit-identical, not approx
    assert times1 == times2
    assert elapsed1 == elapsed2
    assert len(trace1) > 8 * 4       # sanity: the trace is non-trivial


def test_different_seed_changes_random_placement_trace():
    trace1, _, _ = _pingpong_trace(seed=1)
    trace2, _, _ = _pingpong_trace(seed=2)
    # ops are the same program; the timings depend on the placement draw.
    assert [t[:2] for t in trace1] == [t[:2] for t in trace2]
    assert trace1 != trace2
