"""Integration tests for the Simulator run loop and processes."""

import pytest

from repro.simengine import (
    AllOf,
    AnyOf,
    Delay,
    Interrupt,
    ProcessKilled,
    Simulator,
)


def test_clock_starts_at_zero():
    assert Simulator().now == 0.0


def test_run_to_quiescence_with_no_events():
    sim = Simulator()
    assert sim.run() == 0.0


def test_schedule_callback_advances_clock():
    sim = Simulator()
    hits = []
    sim.schedule(2.5, lambda: hits.append(sim.now))
    sim.run()
    assert hits == [2.5]
    assert sim.now == 2.5


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.schedule(-1.0, lambda: None)
    with pytest.raises(ValueError):
        Delay(-0.1)


def test_run_until_stops_clock_exactly():
    sim = Simulator()
    sim.schedule(10.0, lambda: None)
    t = sim.run(until=4.0)
    assert t == 4.0
    assert sim.now == 4.0
    # Remaining event still fires on a further run.
    assert sim.run() == 10.0


def test_simple_process_return_value():
    sim = Simulator()

    def worker():
        yield Delay(1.5)
        return 42

    proc = sim.spawn(worker())
    sim.run()
    assert proc.done.triggered
    assert proc.done.value == 42
    assert sim.now == 1.5


def test_process_join():
    sim = Simulator()
    trace = []

    def child():
        yield Delay(3.0)
        return "child-result"

    def parent():
        c = sim.spawn(child())
        result = yield c
        trace.append((sim.now, result))
        return result

    p = sim.spawn(parent())
    sim.run()
    assert trace == [(3.0, "child-result")]
    assert p.done.value == "child-result"


def test_yield_from_composition():
    sim = Simulator()

    def inner():
        yield Delay(1.0)
        return 10

    def outer():
        a = yield from inner()
        b = yield from inner()
        return a + b

    p = sim.spawn(outer())
    sim.run()
    assert p.done.value == 20
    assert sim.now == 2.0


def test_event_wait_and_value_delivery():
    sim = Simulator()
    evt = sim.event("signal")
    got = []

    def waiter():
        value = yield evt
        got.append((sim.now, value))

    sim.spawn(waiter())
    sim.schedule(5.0, lambda: evt.succeed("payload"))
    sim.run()
    assert got == [(5.0, "payload")]


def test_wait_on_already_triggered_event_resumes_immediately():
    sim = Simulator()
    evt = sim.event()
    evt.succeed(7)
    got = []

    def waiter():
        v = yield evt
        got.append((sim.now, v))

    sim.spawn(waiter())
    sim.run()
    assert got == [(0.0, 7)]


def test_event_double_trigger_raises():
    sim = Simulator()
    evt = sim.event()
    evt.succeed()
    with pytest.raises(RuntimeError):
        evt.succeed()


def test_event_failure_propagates_into_process():
    sim = Simulator()
    evt = sim.event()
    caught = []

    def waiter():
        try:
            yield evt
        except ValueError as e:
            caught.append(str(e))

    sim.spawn(waiter())
    sim.schedule(1.0, lambda: evt.fail(ValueError("boom")))
    sim.run()
    assert caught == ["boom"]


def test_allof_barrier_collects_values_in_order():
    sim = Simulator()
    out = []

    def waiter():
        e1 = sim.timeout_event(2.0, "slow")
        e2 = sim.timeout_event(1.0, "fast")
        values = yield AllOf([e1, e2])
        out.append((sim.now, values))

    sim.spawn(waiter())
    sim.run()
    assert out == [(2.0, ["slow", "fast"])]


def test_anyof_race_returns_first():
    sim = Simulator()
    out = []

    def waiter():
        e1 = sim.timeout_event(2.0, "slow")
        e2 = sim.timeout_event(1.0, "fast")
        idx, value = yield AnyOf([e1, e2])
        out.append((sim.now, idx, value))

    sim.spawn(waiter())
    sim.run()
    assert out == [(1.0, 1, "fast")]


def test_anyof_empty_rejected():
    with pytest.raises(ValueError):
        AnyOf([])


def test_interrupt_delivers_cause():
    sim = Simulator()
    out = []

    def sleeper():
        try:
            yield Delay(100.0)
        except Interrupt as i:
            out.append((sim.now, i.cause))

    p = sim.spawn(sleeper())
    sim.schedule(1.0, lambda: p.interrupt("wakeup"))
    sim.run()
    assert out == [(1.0, "wakeup")]


def test_kill_fails_done_event():
    sim = Simulator()

    def sleeper():
        yield Delay(100.0)

    p = sim.spawn(sleeper())
    sim.schedule(1.0, p.kill)
    sim.run()
    assert p.done.triggered
    assert isinstance(p.done.failure, ProcessKilled)


def test_bare_yield_reschedules_at_same_time():
    sim = Simulator()
    trace = []

    def worker():
        trace.append(sim.now)
        yield
        trace.append(sim.now)

    sim.spawn(worker())
    sim.run()
    assert trace == [0.0, 0.0]


def test_same_time_processes_run_in_spawn_order():
    sim = Simulator()
    trace = []

    def worker(tag):
        trace.append(tag)
        yield Delay(1.0)
        trace.append(tag)

    for tag in "abc":
        sim.spawn(worker(tag))
    sim.run()
    assert trace == ["a", "b", "c", "a", "b", "c"]


def test_max_events_guard():
    sim = Simulator()

    def forever():
        while True:
            yield Delay(1.0)

    sim.spawn(forever())
    with pytest.raises(RuntimeError):
        sim.run(max_events=100)


def test_unsupported_yield_type_raises():
    sim = Simulator()

    def bad():
        yield 123

    sim.spawn(bad())
    with pytest.raises(TypeError):
        sim.run()


def test_determinism_two_identical_runs():
    def build():
        sim = Simulator()
        trace = []

        def worker(tag, dt):
            for _ in range(3):
                yield Delay(dt)
                trace.append((sim.now, tag))

        sim.spawn(worker("x", 1.0))
        sim.spawn(worker("y", 1.0))
        sim.spawn(worker("z", 0.5))
        sim.run()
        return trace

    assert build() == build()
