"""Tests for Resource and Store."""
# FIFO grant-order tests use minimal holders without try/finally on
# purpose; no interrupts are in play.
# simlint: ignore-file[SL501]

import pytest

from repro.simengine import Delay, Resource, Simulator, Store


def test_resource_capacity_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        Resource(sim, capacity=0)


def test_single_slot_serializes_holders():
    sim = Simulator()
    res = Resource(sim, capacity=1, name="nic")
    spans = []

    def holder(tag):
        yield res.request()
        start = sim.now
        yield Delay(2.0)
        res.release()
        spans.append((tag, start, sim.now))

    for tag in "abc":
        sim.spawn(holder(tag))
    sim.run()
    assert spans == [("a", 0.0, 2.0), ("b", 2.0, 4.0), ("c", 4.0, 6.0)]


def test_two_slots_allow_two_concurrent():
    sim = Simulator()
    res = Resource(sim, capacity=2)
    ends = []

    def holder():
        yield res.request()
        yield Delay(1.0)
        res.release()
        ends.append(sim.now)

    for _ in range(4):
        sim.spawn(holder())
    sim.run()
    assert ends == [1.0, 1.0, 2.0, 2.0]


def test_use_helper_releases_on_completion():
    sim = Simulator()
    res = Resource(sim, capacity=1)

    def holder():
        yield from res.use(1.5)

    sim.spawn(holder())
    sim.spawn(holder())
    sim.run()
    assert sim.now == 3.0
    assert res.in_use == 0


def test_release_idle_resource_raises():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    with pytest.raises(RuntimeError):
        res.release()


def test_queue_length_reporting():
    sim = Simulator()
    res = Resource(sim, capacity=1)

    def holder():
        yield res.request()
        yield Delay(5.0)
        res.release()

    def waiter():
        yield res.request()
        res.release()

    sim.spawn(holder())
    sim.spawn(waiter())
    sim.spawn(waiter())
    sim.run(until=1.0)
    assert res.in_use == 1
    assert res.queue_length == 2


def test_store_put_then_get():
    sim = Simulator()
    store = Store(sim)
    store.put("x")
    got = []

    def getter():
        item = yield store.get()
        got.append(item)

    sim.spawn(getter())
    sim.run()
    assert got == ["x"]


def test_store_get_blocks_until_put():
    sim = Simulator()
    store = Store(sim)
    got = []

    def getter():
        item = yield store.get()
        got.append((sim.now, item))

    sim.spawn(getter())
    sim.schedule(3.0, lambda: store.put("late"))
    sim.run()
    assert got == [(3.0, "late")]


def test_store_match_filter_fifo_among_matches():
    sim = Simulator()
    store = Store(sim)
    for item in [("a", 1), ("b", 2), ("a", 3)]:
        store.put(item)
    got = []

    def getter():
        item = yield store.get(match=lambda it: it[0] == "a")
        got.append(item)
        item = yield store.get(match=lambda it: it[0] == "a")
        got.append(item)

    sim.spawn(getter())
    sim.run()
    assert got == [("a", 1), ("a", 3)]
    assert store.peek_all() == [("b", 2)]


def test_store_waiting_getter_with_filter_skips_nonmatching_put():
    sim = Simulator()
    store = Store(sim)
    got = []

    def getter():
        item = yield store.get(match=lambda it: it == "wanted")
        got.append((sim.now, item))

    sim.spawn(getter())
    sim.schedule(1.0, lambda: store.put("other"))
    sim.schedule(2.0, lambda: store.put("wanted"))
    sim.run()
    assert got == [(2.0, "wanted")]
    assert store.peek_all() == ["other"]
