"""The append-only journal: folds, torn tails, derived quarantine."""
# Fixed timestamps/backoffs below are test fixtures, not model constants.
# simlint: ignore-file[SL302,SL303]

import json

import pytest

from repro.campaign.journal import (
    DONE,
    FAILED,
    LEASED,
    PENDING,
    QUARANTINED,
    CellState,
    Journal,
)


@pytest.fixture
def journal(tmp_path):
    return Journal(tmp_path)


def test_empty_journal_replays_to_pending(journal):
    states = journal.replay(["a", "b"])
    assert set(states) == {"a", "b"}
    assert all(st.state == PENDING for st in states.values())
    assert journal.skipped == 0


def test_lease_then_done_fold(journal):
    journal.append({"cell": "a", "state": LEASED, "worker": "w0", "attempt": 1})
    journal.append(
        {"cell": "a", "state": DONE, "attempt": 1, "key": "k" * 64,
         "wall_s": 0.5, "from_cache": True}
    )
    st = journal.replay(["a"])["a"]
    assert st.state == DONE
    assert st.key == "k" * 64
    assert st.wall_s == 0.5
    assert st.from_cache
    assert st.history == [LEASED, DONE]


def test_failure_fold_counts_and_schedules_retry(journal):
    journal.append({"cell": "a", "state": LEASED, "attempt": 1})
    journal.append(
        {"cell": "a", "state": FAILED, "attempt": 1, "error": "boom",
         "backoff_s": 2.0, "t": 100.0}
    )
    st = journal.replay(["a"])["a"]
    assert st.state == FAILED
    assert st.failures == 1
    assert st.error == "boom"
    assert st.retry_not_before == 102.0


def test_retry_and_steal_counters(journal):
    journal.append({"cell": "a", "state": LEASED, "attempt": 1})
    journal.append({"cell": "a", "state": FAILED, "attempt": 1, "error": "x"})
    journal.append({"cell": "a", "state": LEASED, "attempt": 2})
    journal.append({"cell": "a", "state": LEASED, "attempt": 2, "stolen": True})
    st = journal.replay(["a"])["a"]
    assert st.retried == 2  # both re-leases carried attempt > 1
    assert st.stolen == 1
    assert st.error is None  # a fresh lease clears the stale error


def test_quarantine_is_derived_not_recorded(journal):
    for attempt in (1, 2):
        journal.append({"cell": "a", "state": LEASED, "attempt": attempt})
        journal.append(
            {"cell": "a", "state": FAILED, "attempt": attempt, "error": "x"}
        )
    st = journal.replay(["a"])["a"]
    assert st.quarantined(max_attempts=2)
    assert st.effective(max_attempts=2) == QUARANTINED
    assert st.terminal(max_attempts=2)
    # Raising the budget on a later resume re-animates the cell.
    assert st.effective(max_attempts=3) == FAILED
    assert not st.terminal(max_attempts=3)


def test_torn_tail_is_skipped_not_raised(journal):
    journal.append({"cell": "a", "state": LEASED, "attempt": 1})
    journal.append({"cell": "a", "state": DONE, "attempt": 1, "key": "k"})
    with open(journal.path, "ab") as fh:
        fh.write(b'{"cell": "b", "state": "lea')  # SIGKILL mid-append
    states = journal.replay(["a", "b"])
    assert states["a"].state == DONE
    assert states["b"].state == PENDING
    assert journal.skipped == 1


def test_corrupt_middle_line_is_skipped(journal):
    journal.append({"cell": "a", "state": LEASED, "attempt": 1})
    with open(journal.path, "ab") as fh:
        fh.write(b"\x00\xffgarbage\n")
        fh.write(b'["not", "a", "dict"]\n')
    journal.append({"cell": "a", "state": DONE, "attempt": 1, "key": "k"})
    st = journal.replay(["a"])["a"]
    assert st.state == DONE
    assert journal.skipped == 2


def test_unknown_cells_are_ignored_when_seeded(journal):
    journal.append({"cell": "ghost", "state": DONE, "attempt": 1})
    states = journal.replay(["a"])
    assert set(states) == {"a"}
    # Without a seed list the journal is taken at face value.
    assert journal.replay()["ghost"].state == DONE


def test_records_are_versioned_and_timestamped(journal):
    journal.append({"cell": "a", "state": LEASED, "attempt": 1})
    lines = journal.path.read_text().splitlines()
    record = json.loads(lines[0])
    assert record["v"] == 1
    assert record["t"] > 0


def test_exclusive_is_not_reentrant(journal):
    with journal.exclusive():
        with pytest.raises(AssertionError):
            with journal.exclusive():
                pass  # pragma: no cover


def test_unrecognized_state_counts_as_skipped(journal):
    journal.append({"cell": "a", "state": "warp", "attempt": 1})
    st = journal.replay(["a"])["a"]
    assert st.state == PENDING
    assert journal.skipped == 1


def test_cellstate_defaults():
    st = CellState(cell_id="x")
    assert st.state == PENDING
    assert not st.terminal(max_attempts=1)
