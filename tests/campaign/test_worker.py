"""The drain loop: backoff determinism, quarantine, timeouts, slices."""
# Small timeouts/backoffs below are test fixtures, not model constants.
# simlint: ignore-file[SL201,SL302,SL303]

import pytest

from repro.campaign import Worker, WorkerConfig, build_cells, retry_backoff_s
from repro.campaign.journal import DONE, FAILED, QUARANTINED
from repro.campaign.worker import DRAINED, SLICED
from repro.core import registry

CHEAP = ["fig05", "table1"]


def _bomb_all_drivers(monkeypatch, message="driver executed"):
    """Make every driver raise — in this process and (via fork) in any
    campaign cell child."""
    registry._ensure_loaded()
    for exp_id, original in list(registry._REGISTRY.items()):
        def bomb(exp_id=exp_id):
            raise AssertionError(f"{message}: {exp_id}")
        bomb.__module__ = original.__module__
        monkeypatch.setitem(registry._REGISTRY, exp_id, bomb)


def _config(tmp_path, **kwargs):
    defaults = dict(
        cache_dir=str(tmp_path / "cache"),
        max_attempts=2,
        heartbeat_s=0.05,
        stale_after_s=0.25,
        base_backoff_s=0.01,
        poll_s=0.02,
        seed=7,
    )
    defaults.update(kwargs)
    return WorkerConfig(**defaults)


def _worker(tmp_path, cells, **kwargs):
    return Worker(
        tmp_path / "campaign", cells, _config(tmp_path, **kwargs), name="w0"
    )


def test_retry_backoff_is_deterministic_and_grows():
    cfg = WorkerConfig(base_backoff_s=0.25, backoff_factor=2.0, seed=11)
    first = retry_backoff_s("fig05", 1, cfg)
    assert first == retry_backoff_s("fig05", 1, cfg)  # same stream, same draw
    assert first != retry_backoff_s("table1", 1, cfg)  # per-cell stream
    assert 0.25 <= first <= 0.25 * (1.0 + cfg.jitter)
    second = retry_backoff_s("fig05", 2, cfg)
    assert 0.5 <= second <= 0.5 * (1.0 + cfg.jitter)


def test_backoff_seed_forks_the_schedule():
    a = WorkerConfig(seed=1)
    b = WorkerConfig(seed=2)
    assert retry_backoff_s("fig05", 1, a) != retry_backoff_s("fig05", 1, b)


def test_drain_runs_every_cell(tmp_path):
    worker = _worker(tmp_path, build_cells(CHEAP))
    stats = worker.drain()
    assert stats.outcome == DRAINED
    assert stats.ran == 2 and stats.done == 2 and stats.failed == 0
    states = worker.journal.replay(worker.order)
    assert all(st.state == DONE for st in states.values())
    assert all(st.key for st in states.values())


def test_failing_cell_retries_then_quarantines(tmp_path, monkeypatch):
    _bomb_all_drivers(monkeypatch)
    worker = _worker(tmp_path, build_cells(["fig05"]))
    stats = worker.drain()
    assert stats.outcome == DRAINED  # quarantined is terminal: queue drains
    assert stats.failed == 2  # max_attempts
    st = worker.journal.replay(worker.order)["fig05"]
    assert st.failures == 2
    assert st.effective(max_attempts=2) == QUARANTINED
    assert "fig05" in (st.error or "")
    assert st.retried == 1  # the second lease was a retry


def test_failure_records_carry_deterministic_backoff(tmp_path, monkeypatch):
    _bomb_all_drivers(monkeypatch)
    worker = _worker(tmp_path, build_cells(["fig05"]))
    worker.drain()
    backoffs = [
        r["backoff_s"]
        for r in worker.journal.records()
        if r.get("state") == FAILED
    ]
    cfg = _config(tmp_path)
    assert backoffs == [
        round(retry_backoff_s("fig05", 1, cfg), 6),
        round(retry_backoff_s("fig05", 2, cfg), 6),
    ]


def test_wedged_cell_is_killed_on_timeout(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CAMPAIGN_CELL_DELAY_S", "30")
    worker = _worker(
        tmp_path, build_cells(["table1"]),
        cell_timeout_s=0.3, max_attempts=1,
    )
    stats = worker.drain()
    assert stats.failed == 1
    st = worker.journal.replay(worker.order)["table1"]
    assert st.effective(max_attempts=1) == QUARANTINED
    assert "timeout" in st.error


def test_max_cells_slices_resumably(tmp_path):
    cells = build_cells(CHEAP)
    first = _worker(tmp_path, cells, max_cells=1).drain()
    assert first.outcome == SLICED
    assert first.ran == 1
    resumer = _worker(tmp_path, cells)
    second = resumer.drain()
    assert second.outcome == DRAINED
    assert second.ran == 1  # only the remaining cell
    states = resumer.journal.replay(resumer.order)
    assert all(st.state == DONE for st in states.values())


def test_max_seconds_zero_slices_immediately(tmp_path):
    stats = _worker(tmp_path, build_cells(CHEAP), max_seconds=0.0).drain()
    assert stats.outcome == SLICED
    assert stats.ran == 0


def test_two_workers_racing_a_stale_lease_one_wins(tmp_path):
    import threading

    cells = build_cells(["fig05"])
    # A dead worker's legacy: a leased record with no live flock (the
    # lease file does not even exist, so the heartbeat reads as absent).
    setup = _worker(tmp_path, cells)
    setup.journal.append(
        {"cell": "fig05", "state": "leased", "worker": "dead", "attempt": 1}
    )
    a = _worker(tmp_path, cells)
    b = Worker(tmp_path / "campaign", cells, _config(tmp_path), name="w1")
    barrier = threading.Barrier(2)
    claims = {}

    def race(name, worker):
        barrier.wait()
        claim, _ = worker._claim()
        claims[name] = claim

    threads = [
        threading.Thread(target=race, args=("a", a)),
        threading.Thread(target=race, args=("b", b)),
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    winners = [c for c in claims.values() if c is not None]
    assert len(winners) == 1
    assert winners[0].reason == "steal"
    winners[0].lease.release()
    # The steal was journaled with the flag that feeds obs counters.
    st = a.journal.replay(a.order)["fig05"]
    assert st.stolen == 1


def test_live_lease_is_not_stolen(tmp_path):
    cells = build_cells(["fig05"])
    owner = _worker(tmp_path, cells)
    claim, _ = owner._claim()
    assert claim is not None and claim.reason == "fresh"
    thief = Worker(
        tmp_path / "campaign", cells, _config(tmp_path), name="w1"
    )
    stolen, all_done = thief._claim()
    assert stolen is None and not all_done  # heartbeat fresh: not claimable
    claim.lease.release()


def test_backoff_window_blocks_immediate_retry(tmp_path, monkeypatch):
    _bomb_all_drivers(monkeypatch)
    cells = build_cells(["fig05"])
    worker = _worker(tmp_path, cells, base_backoff_s=3600.0, max_cells=1)
    worker.drain()  # one failure, retry scheduled an hour out
    retrier = _worker(tmp_path, cells)
    claim, all_done = retrier._claim()
    assert claim is None and not all_done


def test_finished_queue_reports_all_terminal(tmp_path):
    cells = build_cells(["fig05"])
    worker = _worker(tmp_path, cells)
    worker.journal.append({"cell": "fig05", "state": "leased", "attempt": 1})
    worker.journal.append(
        {"cell": "fig05", "state": "done", "attempt": 1, "key": "k"}
    )
    claim, all_done = worker._claim()
    assert claim is None and all_done
