"""Campaign lifecycle: manifest, inline drain, resume, merge, telemetry."""
# Small budgets below are test fixtures, not model constants.
# simlint: ignore-file[SL302,SL303]

import json

import pytest

from repro.campaign import (
    Campaign,
    CampaignError,
    CampaignExistsError,
    WorkerConfig,
    build_cells,
    execute_cell,
)
from repro.core import registry
from repro.core.report import render_csv, render_result
from repro.obs import Tracer
from repro.runner import ResultCache

CHEAP = ["fig05", "table1"]
EMPTY_PLAN = {"version": 1, "events": []}


def _bomb_all_drivers(monkeypatch):
    registry._ensure_loaded()
    for exp_id, original in list(registry._REGISTRY.items()):
        def bomb(exp_id=exp_id):
            raise AssertionError(f"driver {exp_id} executed")
        bomb.__module__ = original.__module__
        monkeypatch.setitem(registry._REGISTRY, exp_id, bomb)


def _config(tmp_path, **kwargs):
    defaults = dict(
        cache_dir=str(tmp_path / "cache"),
        heartbeat_s=0.05,
        stale_after_s=0.25,
        base_backoff_s=0.01,
        seed=7,
    )
    defaults.update(kwargs)
    return WorkerConfig(**defaults)


def _create(tmp_path, cells=None, campaign_id="c1", **cfg):
    cells = cells if cells is not None else build_cells(CHEAP)
    return Campaign.create(
        campaign_id, cells, _config(tmp_path, **cfg), root=tmp_path / "root"
    )


def test_create_writes_self_contained_manifest(tmp_path):
    cells = build_cells(CHEAP, [("none", None), ("empty", EMPTY_PLAN)])
    campaign = _create(tmp_path, cells)
    manifest = json.loads(campaign.manifest_path.read_text())
    assert manifest["id"] == "c1"
    assert len(manifest["cells"]) == 4
    # The plan rides inline: resume never needs the original file.
    planned = [c for c in manifest["cells"] if "plan" in c]
    assert len(planned) == 2
    assert planned[0]["plan"] == EMPTY_PLAN
    assert manifest["config"]["max_attempts"] == 3


def test_create_is_idempotent_for_identical_spec(tmp_path):
    _create(tmp_path)
    again = _create(tmp_path)  # run twice == resume
    assert again.exists


def test_create_rejects_spec_drift_under_same_id(tmp_path):
    _create(tmp_path)
    with pytest.raises(CampaignExistsError, match="different cell spec"):
        _create(tmp_path, build_cells(["fig05"]))


def test_invalid_ids_are_rejected(tmp_path):
    for bad in ("", "a/b", ".hidden"):
        with pytest.raises(CampaignError):
            Campaign(bad, root=tmp_path)


def test_load_missing_campaign_names_known_ids(tmp_path):
    _create(tmp_path)
    with pytest.raises(CampaignError, match="c1"):
        Campaign.load("nope", root=tmp_path / "root")


def test_inline_drain_completes_and_merges(tmp_path):
    campaign = _create(tmp_path)
    stats = campaign.drain_inline(name="w0")
    assert stats.done == 2
    assert campaign.finished()
    summary = campaign.summary()
    assert summary["done"] == summary["total"] == 2
    assert summary["quarantined"] == 0
    written, problems = campaign.merge(tmp_path / "out")
    assert problems == []
    assert sorted(p.name for p in written) == [
        "fig05.csv", "fig05.txt", "table1.csv", "table1.txt",
    ]


def test_merged_artifacts_match_direct_execution(tmp_path):
    campaign = _create(tmp_path)
    campaign.drain_inline(name="w0")
    campaign.merge(tmp_path / "out")
    for exp_id in CHEAP:
        result = registry.get_experiment(exp_id)()
        assert (tmp_path / "out" / f"{exp_id}.csv").read_text() == \
            render_csv(result)
        assert (tmp_path / "out" / f"{exp_id}.txt").read_text() == \
            render_result(result)


def test_resume_serves_done_cells_warm_across_campaigns(
    tmp_path, monkeypatch
):
    _create(tmp_path, campaign_id="first").drain_inline(name="w0")
    _bomb_all_drivers(monkeypatch)
    # A second campaign over the same cells shares the result store:
    # zero driver executions.
    second = _create(tmp_path, campaign_id="second")
    stats = second.drain_inline(name="w0")
    assert stats.done == 2
    assert stats.cache_hits == 2
    assert second.summary()["warm"] == 2


def test_cache_write_before_journal_append_dedupes(tmp_path, monkeypatch):
    # The SIGKILL-between-cache-write-and-journal-append window: the
    # cell's result is in the store but the journal never saw "done".
    campaign = _create(tmp_path)
    cache = ResultCache(campaign.config().cache_dir)
    for cell in campaign.cells():
        execute_cell(cell, cache)
    campaign.journal.append(
        {"cell": "fig05", "state": "leased", "worker": "dead", "attempt": 1}
    )
    _bomb_all_drivers(monkeypatch)
    stats = campaign.drain_inline(name="w0")
    # Every cell re-runs warm — including the orphaned lease, which is
    # stolen and then deduped by fingerprint.
    assert stats.done == 2 and stats.cache_hits == 2
    assert stats.stolen == 1
    assert campaign.summary()["stolen"] == 1


def test_partial_drain_then_resume_completes(tmp_path):
    campaign = _create(tmp_path)
    first = campaign.drain_inline(name="w0", max_cells=1)
    assert first.outcome == "sliced"
    assert not campaign.finished()
    reloaded = Campaign.load("c1", root=tmp_path / "root")
    second = reloaded.drain_inline(name="w1")
    assert second.ran == 1
    assert reloaded.finished()


def test_merge_reports_unfinished_and_evicted_cells(tmp_path):
    campaign = _create(tmp_path)
    campaign.drain_inline(name="w0", max_cells=1)
    written, problems = campaign.merge(tmp_path / "out")
    assert len(written) == 2  # the one done cell
    assert len(problems) == 1 and "pending" in problems[0]
    # Evict the store: merge flags the vanished result instead of dying.
    cache_dir = tmp_path / "cache"
    for entry in (cache_dir / "v1").glob("*/*.json"):
        entry.unlink()
    written, problems = campaign.merge(tmp_path / "out2")
    assert written == []
    assert any("missing from cache" in p for p in problems)


def test_report_is_json_safe_and_ordered(tmp_path):
    campaign = _create(tmp_path)
    campaign.drain_inline(name="w0")
    report = json.loads(json.dumps(campaign.report()))
    assert [r["cell_id"] for r in report["cells"]] == CHEAP
    assert all(r["state"] == "done" for r in report["cells"])
    assert report["summary"]["done"] == 2
    assert report["journal_records_skipped"] == 0


def test_publish_exports_deterministic_counters(tmp_path):
    campaign = _create(tmp_path)
    campaign.drain_inline(name="w0")
    a, b = Tracer(), Tracer()
    campaign.publish(a)
    campaign.publish(b)
    totals = a.counter_totals("campaign.")
    assert totals["campaign.cells.done"] == 2.0
    assert "campaign.cells.quarantined" not in totals
    assert totals["campaign.cell[fig05].wall_s"] >= 0.0
    assert a.counter_totals() == b.counter_totals()  # replay-stable


def test_quarantined_campaign_publishes_quarantine(tmp_path, monkeypatch):
    _bomb_all_drivers(monkeypatch)
    campaign = _create(
        tmp_path, build_cells(["fig05"]), campaign_id="poison",
        max_attempts=1,
    )
    campaign.drain_inline(name="w0")
    assert campaign.finished()  # quarantine is terminal
    tracer = Tracer()
    campaign.publish(tracer)
    assert tracer.counter_totals()["campaign.cells.quarantined"] == 1.0
    assert campaign.summary()["quarantined"] == 1


def test_list_ids_sees_only_real_campaigns(tmp_path):
    _create(tmp_path, campaign_id="b")
    _create(tmp_path, campaign_id="a", cells=build_cells(["fig05"]))
    (tmp_path / "root" / "debris").mkdir()
    assert Campaign.list_ids(tmp_path / "root") == ["a", "b"]
