"""Chaos harness: SIGKILL workers mid-cell and mid-journal, then resume.

The crash contract under test: a campaign whose workers die by SIGKILL
— mid-cell, between cache write and journal append, or mid-journal-write
(modelled by a torn tail) — resumes to completion with the *same merged
bytes* as an uninterrupted serial run, with dead workers' leases stolen
rather than wedging the queue.

When ``CAMPAIGN_CHAOS_ARTIFACTS`` is set (the CI smoke job does), the
kill-test's journal and report are copied there for upload.
"""
# Host wall-clock/sleep use is the point of a chaos harness.
# simlint: ignore-file[SL201,SL302,SL303]

import json
import os
import pathlib
import shutil
import signal
import subprocess
import sys
import time

import pytest

from repro.campaign import Campaign, WorkerConfig, build_cells
from repro.campaign.journal import Journal

CHEAP6 = ["table1", "fig07", "fig06", "ext_multicore", "fig05", "fig04"]
EMPTY_PLAN = {"version": 1, "events": []}


def _twelve_cells():
    return build_cells(CHEAP6, [("none", None), ("empty", EMPTY_PLAN)])


def _config(tmp_path, **kwargs):
    defaults = dict(
        cache_dir=str(tmp_path / "cache"),
        heartbeat_s=0.05,
        stale_after_s=0.25,
        base_backoff_s=0.01,
        seed=7,
    )
    defaults.update(kwargs)
    return WorkerConfig(**defaults)


def _spawn_worker(campaign, name, env=None):
    cmd = [
        sys.executable, "-m", "repro.campaign", "worker", campaign.id,
        "--root", str(campaign.root), "--name", name,
    ]
    full_env = dict(os.environ)
    full_env["PYTHONPATH"] = str(
        pathlib.Path(__file__).resolve().parents[2] / "src"
    )
    full_env.update(env or {})
    return subprocess.Popen(
        cmd, start_new_session=True, env=full_env,
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )


def _wait_for_lease_by(campaign, worker_name, timeout=30.0):
    """Block until ``worker_name`` has journaled a lease."""
    deadline = time.monotonic() + timeout
    journal = Journal(campaign.dir)
    while time.monotonic() < deadline:
        for record in journal.records():
            if (
                record.get("state") == "leased"
                and record.get("worker") == worker_name
            ):
                return record["cell"]
        time.sleep(0.05)
    raise AssertionError(f"{worker_name} never leased a cell")


def _merge_bytes(campaign, out_dir):
    written, problems = campaign.merge(out_dir)
    assert problems == []
    return {p.name: p.read_bytes() for p in written}


@pytest.mark.slow
def test_sigkill_mid_cell_steal_resume_and_identical_bytes(tmp_path):
    # Clean serial baseline first, in its own store: the gold bytes.
    baseline = Campaign.create(
        "gold", _twelve_cells(),
        _config(tmp_path / "gold"), root=tmp_path / "root",
    )
    stats = baseline.drain_inline(name="serial")
    assert stats.done == 12
    gold = _merge_bytes(baseline, tmp_path / "gold-out")
    assert len(gold) == 24

    chaos = Campaign.create(
        "chaos", _twelve_cells(),
        _config(tmp_path / "chaos"), root=tmp_path / "root",
    )
    # Two CLI workers; every cell dawdles so the kill lands mid-cell.
    slow = {"REPRO_CAMPAIGN_CELL_DELAY_S": "0.4"}
    victim = _spawn_worker(chaos, "victim", env=slow)
    survivor = _spawn_worker(chaos, "survivor", env=slow)
    try:
        _wait_for_lease_by(chaos, "victim")
        # SIGKILL the victim's whole session (worker + its cell child):
        # no handlers run, the flock evaporates with the fds.
        os.killpg(victim.pid, signal.SIGKILL)
        victim.wait()
        assert survivor.wait(timeout=120) == 0
    finally:
        for proc in (victim, survivor):
            if proc.poll() is None:
                os.killpg(proc.pid, signal.SIGKILL)
                proc.wait()

    # The survivor alone may have drained everything already; a resume
    # must finish whatever is left either way.
    resumed = Campaign.load("chaos", root=tmp_path / "root")
    resumed.drain_inline(name="resumer")
    summary = resumed.summary()
    assert summary["done"] == summary["total"] == 12
    assert summary["quarantined"] == 0
    assert summary["stolen"] >= 1  # the victim's cell was stolen
    # Crash + steal + resume produced byte-identical merged artifacts.
    assert _merge_bytes(resumed, tmp_path / "chaos-out") == gold

    artifacts = os.environ.get("CAMPAIGN_CHAOS_ARTIFACTS")
    if artifacts:  # pragma: no cover - CI only
        dest = pathlib.Path(artifacts)
        dest.mkdir(parents=True, exist_ok=True)
        shutil.copy(resumed.journal.path, dest / "chaos-journal.jsonl")
        (dest / "chaos-report.json").write_text(
            json.dumps(resumed.report(), indent=2, sort_keys=True)
        )


@pytest.mark.slow
def test_sigterm_stops_cleanly_and_resume_finishes(tmp_path):
    campaign = Campaign.create(
        "interrupted", _twelve_cells(),
        _config(tmp_path), root=tmp_path / "root",
    )
    worker = _spawn_worker(
        campaign, "w0", env={"REPRO_CAMPAIGN_CELL_DELAY_S": "0.3"}
    )
    try:
        _wait_for_lease_by(campaign, "w0")
        worker.terminate()  # what `campaign.wait` forwards on Ctrl-C
        assert worker.wait(timeout=60) == 130
    finally:
        if worker.poll() is None:
            os.killpg(worker.pid, signal.SIGKILL)
            worker.wait()
    # The interrupted cell was left leased without burning an attempt...
    states = campaign.states()
    assert all(st.failures == 0 for st in states.values())
    assert not campaign.finished()
    # ...and a resume steals it and drains the rest.
    campaign.drain_inline(name="resumer")
    summary = campaign.summary()
    assert summary["done"] == 12
    assert summary["stolen"] >= 1


def test_torn_journal_tail_resumes(tmp_path):
    campaign = Campaign.create(
        "torn", build_cells(["fig05", "table1"]),
        _config(tmp_path), root=tmp_path / "root",
    )
    campaign.drain_inline(name="w0", max_cells=1)
    # A worker SIGKILLed inside its journal append leaves a torn line.
    with open(campaign.journal.path, "ab") as fh:
        fh.write(b'{"cell": "table1", "state": "don')
    campaign.drain_inline(name="w1")
    assert campaign.finished()
    report = campaign.report()
    assert report["journal_records_skipped"] == 1
    assert report["summary"]["done"] == 2
