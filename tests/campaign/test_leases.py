"""flock leases: exclusivity, exactly-one-winner races, heartbeats."""
# Host wall-clock use below is the thing under test.
# simlint: ignore-file[SL201]

import threading

from repro.campaign.leases import Lease, heartbeat_age


def test_acquire_release_cycle(tmp_path):
    lease = Lease(tmp_path, "fig05", "w0")
    assert not lease.held
    assert lease.try_acquire()
    assert lease.held
    assert lease.try_acquire()  # idempotent while held
    lease.release()
    assert not lease.held
    lease.release()  # idempotent when free


def test_second_holder_is_rejected(tmp_path):
    # flock is per open-file-description: a second fd on the same lease
    # file conflicts even within one process, so this models a second
    # worker exactly.
    a = Lease(tmp_path, "fig05", "w0")
    b = Lease(tmp_path, "fig05", "w1")
    assert a.try_acquire()
    assert not b.try_acquire()
    a.release()
    assert b.try_acquire()
    b.release()


def test_distinct_cells_do_not_conflict(tmp_path):
    a = Lease(tmp_path, "fig05", "w0")
    b = Lease(tmp_path, "table1", "w0")
    assert a.try_acquire() and b.try_acquire()
    a.release()
    b.release()


def test_race_has_exactly_one_winner(tmp_path):
    racers = [Lease(tmp_path, "fig05", f"w{i}") for i in range(8)]
    barrier = threading.Barrier(len(racers))
    wins = []

    def race(lease):
        barrier.wait()
        if lease.try_acquire():
            wins.append(lease.worker)

    threads = [threading.Thread(target=race, args=(r,)) for r in racers]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert len(wins) == 1
    for r in racers:
        r.release()


def test_beat_writes_readable_heartbeat(tmp_path):
    lease = Lease(tmp_path, "fig05", "w0")
    with lease:
        assert lease.try_acquire()
        lease.beat()
        info = Lease.info(tmp_path, "fig05")
        assert info["cell"] == "fig05"
        assert info["worker"] == "w0"
        assert info["beat"] > 0
        age = heartbeat_age(tmp_path, "fig05")
        assert age is not None and age < 30.0


def test_beat_requires_ownership(tmp_path):
    lease = Lease(tmp_path, "fig05", "w0")
    try:
        lease.beat()
    except RuntimeError as exc:
        assert "not held" in str(exc)
    else:  # pragma: no cover
        raise AssertionError("beat without the lease must raise")


def test_missing_lease_file_reads_as_absent(tmp_path):
    assert Lease.info(tmp_path, "nope") is None
    assert heartbeat_age(tmp_path, "nope") is None


def test_corrupt_lease_file_reads_as_absent(tmp_path):
    path = tmp_path / "fig05.lease"
    path.write_bytes(b"\x00 not json")
    assert Lease.info(tmp_path, "fig05") is None
    assert heartbeat_age(tmp_path, "fig05") is not None  # mtime still works
