"""Public-API integrity: exports resolve, and every module is documented."""

import importlib
import pathlib
import pkgutil

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.apps",
    "repro.campaign",
    "repro.core",
    "repro.hpcc",
    "repro.kernels",
    "repro.lustre",
    "repro.machine",
    "repro.mpi",
    "repro.network",
    "repro.obs",
    "repro.prof",
    "repro.simengine",
]


def _all_modules():
    root = pathlib.Path(repro.__file__).parent
    for info in pkgutil.walk_packages([str(root)], prefix="repro."):
        yield info.name


@pytest.mark.parametrize("pkg", PACKAGES)
def test_all_exports_resolve(pkg):
    module = importlib.import_module(pkg)
    for name in getattr(module, "__all__", []):
        assert hasattr(module, name), f"{pkg}.__all__ lists missing {name!r}"


def test_every_module_imports_and_is_documented():
    missing_docs = []
    for name in _all_modules():
        module = importlib.import_module(name)
        if not (module.__doc__ or "").strip():
            missing_docs.append(name)
    assert not missing_docs, f"undocumented modules: {missing_docs}"


def test_every_public_class_and_function_is_documented():
    undocumented = []
    for pkg in PACKAGES:
        module = importlib.import_module(pkg)
        for name in getattr(module, "__all__", []):
            obj = getattr(module, name)
            if callable(obj) and not (getattr(obj, "__doc__", "") or "").strip():
                undocumented.append(f"{pkg}.{name}")
    assert not undocumented, f"undocumented public items: {undocumented}"


def test_version_is_exposed():
    assert repro.__version__ == "1.0.0"
