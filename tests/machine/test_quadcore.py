"""Tests for the quad-core projection machine (extension study)."""

import pytest

from repro.hpcc import DGEMMBench, RandomAccessBench, StreamBench
from repro.machine import MemoryModel, xt4
from repro.machine.configs import DDR2_800, xt4_quadcore
from repro.mpi import MPIJob
from repro.network import Placement


def test_quadcore_spec():
    m = xt4_quadcore()
    assert m.node.cores == 4
    assert m.node.processor.peak_gflops_per_core == pytest.approx(8.4)
    assert m.node.memory.peak_bw_GBs == 12.8  # simlint: ignore[SL302] — DDR2-800, quoted in §2
    assert m.node.nic.name == "SeaStar2"


def test_quadcore_vn_places_four_tasks_per_node():
    m = xt4_quadcore("VN")
    assert m.tasks_per_node == 4
    p = Placement(m, 8)
    assert p.ranks_on_node(0) == [0, 1, 2, 3]
    assert p.num_nodes_used == 2


def test_quadcore_memory_sharing_four_ways():
    mem = MemoryModel(DDR2_800, cores=4)
    assert mem.stream_triad_GBs(4) == pytest.approx(
        DDR2_800.achievable_bw_GBs / 4
    )
    assert mem.random_access_gups(4) == pytest.approx(
        DDR2_800.random_update_rate_gups / 4
    )


def test_quadcore_per_core_bandwidth_below_dual():
    quad = StreamBench(xt4_quadcore("VN")).ep_GBs()
    dual = StreamBench(xt4("VN")).ep_GBs()
    assert quad < dual  # four cores on a slightly faster bus: thinner slices


def test_quadcore_dgemm_socket_rate_exceeds_dual():
    quad = 4 * DGEMMBench(xt4_quadcore("VN")).ep_gflops()
    dual = 2 * DGEMMBench(xt4("VN")).ep_gflops()
    assert quad > 2 * dual  # 4 cores x 4 flops/cycle


def test_quadcore_ra_per_core_halves_again():
    quad = RandomAccessBench(xt4_quadcore("VN")).ep_gups()
    dual = RandomAccessBench(xt4("VN")).ep_gups()
    assert quad < dual


def test_quadcore_des_job_runs():
    def main(comm):
        total = yield from comm.allreduce(comm.rank)
        return total

    result = MPIJob(xt4_quadcore("VN"), 8).run(main)
    assert result.returns[0] == sum(range(8))
    assert result.elapsed_s > 0
