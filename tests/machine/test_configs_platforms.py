"""Tests for machine configs, Table 1 regeneration, and comparison platforms."""

import pytest

from repro.machine import PLATFORMS, table1_rows, xt3, xt3_dc, xt4
from repro.machine.platforms import platform_from_machine


def test_table1_has_three_systems_in_order():
    rows = table1_rows()
    assert [r["system"] for r in rows] == ["XT3", "XT3-DC", "XT4"]


def test_table1_values():
    rows = {r["system"]: r for r in table1_rows()}
    assert rows["XT3"]["processor_sockets"] == 5212
    assert rows["XT3"]["processor_cores"] == 5212
    assert rows["XT3-DC"]["processor_cores"] == 10424
    assert rows["XT4"]["processor_sockets"] == 6296
    assert rows["XT4"]["processor_cores"] == 12592
    assert rows["XT3"]["memory"] == "DDR-400"
    assert rows["XT4"]["memory"] == "DDR2-667"
    assert rows["XT4"]["network_injection_bandwidth_GBs"] == 4.0
    assert rows["XT3"]["network_injection_bandwidth_GBs"] == 2.2
    assert rows["XT4"]["interconnect"] == "SeaStar2"


def test_platforms_present():
    assert set(PLATFORMS) == {"X1E", "EarthSimulator", "p690", "p575", "SP"}


def test_platform_peak_rates_match_paper():
    assert PLATFORMS["X1E"].peak_gflops_per_proc == 18.0
    assert PLATFORMS["EarthSimulator"].peak_gflops_per_proc == 8.0
    assert PLATFORMS["p690"].peak_gflops_per_proc == 5.2
    assert PLATFORMS["p575"].peak_gflops_per_proc == 7.6
    assert PLATFORMS["SP"].peak_gflops_per_proc == 1.5


def test_platform_sizes_match_paper():
    assert PLATFORMS["X1E"].total_procs == 1024
    assert PLATFORMS["EarthSimulator"].num_nodes == 640
    assert PLATFORMS["p690"].num_nodes == 27
    assert PLATFORMS["p575"].num_nodes == 122
    assert PLATFORMS["SP"].num_nodes == 184


def test_vector_penalty_only_below_critical_length():
    x1e = PLATFORMS["X1E"]
    assert x1e.vector_penalty(256) == 1.0
    assert x1e.vector_penalty(128) == 1.0
    assert x1e.vector_penalty(64) == pytest.approx(0.5)
    assert x1e.vector_penalty(1) >= 0.25  # floored


def test_scalar_platform_has_no_vector_penalty():
    assert PLATFORMS["p575"].vector_penalty(1) == 1.0


def test_platform_from_machine_sn_vs_vn():
    sn = platform_from_machine(xt4("SN"))
    vn = platform_from_machine(xt4("VN"))
    assert sn.procs_per_node == 1
    assert vn.procs_per_node == 2
    assert vn.mpi_latency_us > sn.mpi_latency_us
    assert vn.mpi_bw_GBs == pytest.approx(sn.mpi_bw_GBs / 2)
    assert vn.total_procs == 2 * sn.total_procs


def test_xt3_dual_core_upgrade_kept_memory():
    assert xt3_dc().node.memory == xt3().node.memory
    assert xt3_dc().node.nic == xt3().node.nic
    assert xt3_dc().node.processor.clock_ghz == 2.6  # simlint: ignore[SL302] — published spec value
