"""Tests for the calibration register — the drift guard."""

from repro.machine.calibration import (
    CALIBRATED,
    PUBLISHED,
    audit,
    calibrated_count,
    published_count,
)


def test_every_record_is_consistent_with_live_code():
    """If a constant changes in the code, its audit record must be
    updated too — otherwise this test names the drifted constant."""
    bad = [row["constant"] for row in audit() if not row["consistent"]]
    assert not bad, f"calibration register out of date for: {bad}"


def test_register_covers_both_kinds():
    assert published_count() >= 8
    assert calibrated_count() >= 15


def test_every_record_cites_a_source():
    for row in audit():
        assert row["source"], row["constant"]
        assert row["kind"] in (PUBLISHED, CALIBRATED)


def test_audit_renders():
    from repro.core.report import render_table

    text = render_table(audit())
    assert "Fig. 2" in text and "Table 1" in text
