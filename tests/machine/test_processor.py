"""Tests for the per-core kernel rate model."""

import pytest

from repro.machine import CoreModel, xt3, xt4


def test_dgemm_rates_match_paper_fig5():
    # Fig. 5: XT3 ~4.4 GFLOPS, XT4 ~4.8 GFLOPS.
    assert CoreModel(xt3()).dgemm_gflops() == pytest.approx(4.4, rel=0.02)
    assert CoreModel(xt4("SN")).dgemm_gflops() == pytest.approx(4.78, rel=0.02)


def test_fft_rates_match_paper_fig4():
    # Fig. 4: XT3 ~0.52, XT4-SN ~0.65 GFLOPS (model: 0.55 / 0.65).
    assert CoreModel(xt3()).fft_gflops() == pytest.approx(0.55, rel=0.05)
    assert CoreModel(xt4("SN")).fft_gflops() == pytest.approx(0.65, rel=0.05)


def test_vn_mode_uses_both_cores_as_default_active():
    sn = CoreModel(xt4("SN"))
    vn = CoreModel(xt4("VN"))
    assert vn.default_active_cores == 2
    assert sn.default_active_cores == 1
    assert vn.stream_triad_GBs() < sn.stream_triad_GBs()


def test_explicit_active_cores_override():
    vn = CoreModel(xt4("VN"))
    assert vn.stream_triad_GBs(active_cores=1) == CoreModel(xt4("SN")).stream_triad_GBs()


def test_random_access_gups_vn_halves():
    sn = CoreModel(xt4("SN"))
    vn = CoreModel(xt4("VN"))
    assert vn.random_access_gups() == pytest.approx(sn.random_access_gups() / 2)


def test_profile_accepts_name_or_instance():
    from repro.machine.configs import PROFILES

    cm = CoreModel(xt4("SN"))
    assert cm.rate_gflops("dgemm") == cm.rate_gflops(PROFILES["dgemm"])


def test_time_s_inverse_of_rate():
    cm = CoreModel(xt4("SN"))
    t = cm.time_s(1.0e9, "dgemm")
    assert t == pytest.approx(1.0 / cm.dgemm_gflops())
