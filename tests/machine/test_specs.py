"""Tests for hardware spec dataclasses and Machine derived quantities."""
# Tests compare spec fields against the paper's published numbers as
# literals on purpose.
# simlint: ignore-file[SL302]

import pytest

from repro.machine import Machine, Mode, xt3, xt3_dc, xt4
from repro.machine.configs import PUBLISHED_SOCKETS, xt3_xt4_combined
from repro.machine.modes import parse_mode
from repro.machine.specs import WorkloadProfile


def test_peak_gflops_per_core():
    assert xt3().node.processor.peak_gflops_per_core == pytest.approx(4.8)
    assert xt4().node.processor.peak_gflops_per_core == pytest.approx(5.2)


def test_table1_constants_match_paper():
    assert xt3().node.memory.peak_bw_GBs == 6.4
    assert xt4().node.memory.peak_bw_GBs == 10.6
    assert xt3().node.nic.injection_bw_GBs == 2.2
    assert xt4().node.nic.injection_bw_GBs == 4.0
    assert xt3().node.cores == 1
    assert xt3_dc().node.cores == 2
    assert xt4().node.cores == 2


def test_memory_capacity_is_2gb_per_core():
    for m in (xt3(), xt3_dc(), xt4()):
        assert m.node.memory_capacity_gb_per_core == 2.0
    assert xt4().node.memory_capacity_gb == 4.0
    assert xt3().node.memory_capacity_gb == 2.0


def test_torus_encloses_published_sockets():
    assert xt3().num_nodes >= PUBLISHED_SOCKETS["XT3"]
    assert xt4().num_nodes >= PUBLISHED_SOCKETS["XT4"]


def test_tasks_per_node_follows_mode():
    assert xt4(Mode.SN).tasks_per_node == 1
    assert xt4(Mode.VN).tasks_per_node == 2
    assert xt3(Mode.VN).tasks_per_node == 1  # single-core: VN == SN


def test_with_mode_returns_new_machine():
    sn = xt4("SN")
    vn = sn.with_mode("VN")
    assert sn.mode is Mode.SN
    assert vn.mode is Mode.VN
    assert vn.name == sn.name


def test_parse_mode_accepts_strings_case_insensitively():
    assert parse_mode("sn") is Mode.SN
    assert parse_mode("Vn") is Mode.VN
    assert parse_mode(Mode.SN) is Mode.SN
    with pytest.raises(ValueError):
        parse_mode("dual")


def test_nodes_for_tasks():
    m = xt4("VN")
    assert m.nodes_for_tasks(1) == 1
    assert m.nodes_for_tasks(2) == 1
    assert m.nodes_for_tasks(3) == 2
    assert xt4("SN").nodes_for_tasks(10) == 10


def test_nodes_for_tasks_capacity_check():
    m = xt4("SN")
    with pytest.raises(ValueError):
        m.nodes_for_tasks(m.max_tasks + 1)
    with pytest.raises(ValueError):
        m.nodes_for_tasks(0)


def test_combined_system_larger_than_either():
    combined = xt3_xt4_combined()
    assert combined.num_nodes > xt4().num_nodes
    assert combined.max_tasks >= 22000  # POP runs out to 22k tasks


def test_workload_profile_validation():
    with pytest.raises(ValueError):
        WorkloadProfile("bad", bytes_per_flop=-1, compute_efficiency=0.5)
    with pytest.raises(ValueError):
        WorkloadProfile("bad", bytes_per_flop=0.1, compute_efficiency=0.0)
    with pytest.raises(ValueError):
        WorkloadProfile("bad", bytes_per_flop=0.1, compute_efficiency=1.5)


def test_invalid_torus_dims_rejected():
    node = xt4().node
    with pytest.raises(ValueError):
        Machine(name="bad", node=node, torus_dims=(0, 2, 2))


def test_mpi_bw_matches_paper_pingpong():
    # Fig. 3: XT3 ping-pong ~1.15 GB/s, XT4 just over 2 GB/s.
    assert xt3().node.nic.mpi_bw_GBs == pytest.approx(1.15, rel=0.02)
    assert xt4().node.nic.mpi_bw_GBs == pytest.approx(2.1, rel=0.02)
