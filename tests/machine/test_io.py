"""Tests for machine JSON serialization."""

import json

import pytest

from repro.hpcc import PingPong, StreamBench
from repro.machine import xt3, xt3_dc, xt4
from repro.machine.configs import xt3_xt4_combined, xt4_quadcore
from repro.machine.io import (
    load_machine,
    machine_from_dict,
    machine_to_dict,
    save_machine,
)


@pytest.mark.parametrize(
    "factory", [xt3, xt3_dc, xt4, xt4_quadcore, xt3_xt4_combined],
    ids=lambda f: f.__name__,
)
def test_roundtrip_every_config(factory):
    m = factory()
    assert machine_from_dict(machine_to_dict(m)) == m


def test_roundtrip_preserves_mode():
    m = xt4("VN")
    again = machine_from_dict(machine_to_dict(m))
    assert again.mode == m.mode
    assert again.tasks_per_node == 2


def test_file_roundtrip(tmp_path):
    path = tmp_path / "xt4.json"
    save_machine(xt4("SN"), path)
    assert load_machine(path) == xt4("SN")
    # The file is human-readable JSON.
    data = json.loads(path.read_text())
    assert data["name"] == "XT4"
    assert data["node"]["nic"]["injection_bw_GBs"] == 4.0


def test_custom_machine_runs_benchmarks(tmp_path):
    """The point of serialization: a what-if config drives the stack."""
    data = machine_to_dict(xt4("SN"))
    data["name"] = "XT4-fastmem"
    data["node"]["memory"]["peak_bw_GBs"] = 21.2  # doubled memory
    custom = machine_from_dict(data)
    assert StreamBench(custom).sp_GBs() > 2 * StreamBench(xt4("SN")).sp_GBs() * 0.9
    assert PingPong(custom).latency_us("min") == PingPong(xt4("SN")).latency_us("min")


def test_schema_version_checked():
    data = machine_to_dict(xt4())
    data["schema_version"] = 99
    with pytest.raises(ValueError, match="schema version"):
        machine_from_dict(data)


def test_malformed_input_rejected():
    data = machine_to_dict(xt4())
    del data["node"]["processor"]["clock_ghz"]
    with pytest.raises(ValueError, match="malformed"):
        machine_from_dict(data)
    with pytest.raises(ValueError):
        machine_from_dict({"schema_version": 1, "name": "x"})
