"""Tests for the shared memory-controller model — the engine behind Figs 4-7."""

import pytest
from hypothesis import given, strategies as st

from repro.machine import MemoryModel, xt3, xt4
from repro.machine.configs import DDR2_667, DDR_400, PROFILES


@pytest.fixture
def xt4_mem():
    return MemoryModel(DDR2_667, cores=2)


@pytest.fixture
def xt3_mem():
    return MemoryModel(DDR_400, cores=1)


def test_stream_single_core_near_socket_achievable(xt4_mem):
    # One core draws nearly the full achievable socket bandwidth.
    assert xt4_mem.stream_triad_GBs(1) == pytest.approx(
        DDR2_667.achievable_bw_GBs * DDR2_667.single_core_bw_fraction
    )


def test_stream_two_cores_split_socket_bandwidth(xt4_mem):
    per_core_2 = xt4_mem.stream_triad_GBs(2)
    assert per_core_2 == pytest.approx(DDR2_667.achievable_bw_GBs / 2)
    # Second core adds almost nothing at socket level (paper Fig. 7).
    socket_1 = xt4_mem.stream_triad_GBs(1)
    socket_2 = 2 * per_core_2
    assert socket_2 / socket_1 < 1.05


def test_stream_xt4_beats_xt3(xt3_mem, xt4_mem):
    assert xt4_mem.stream_triad_GBs(1) > xt3_mem.stream_triad_GBs(1)


def test_stream_values_match_paper(xt3_mem, xt4_mem):
    # Fig. 7: XT3 ~4.1 GB/s, XT4 SP ~6.3-6.5 GB/s.
    assert xt3_mem.stream_triad_GBs(1) == pytest.approx(4.1, rel=0.05)
    assert xt4_mem.stream_triad_GBs(1) == pytest.approx(6.3, rel=0.05)


def test_random_access_per_core_halves_with_two_cores(xt4_mem):
    sp = xt4_mem.random_access_gups(1)
    ep = xt4_mem.random_access_gups(2)
    assert ep == pytest.approx(sp / 2)
    # Per-socket rate is mode independent.
    assert 2 * ep == pytest.approx(sp)


def test_random_access_xt4_improves_over_xt3(xt3_mem, xt4_mem):
    assert xt4_mem.random_access_gups(1) > xt3_mem.random_access_gups(1)


def test_active_core_bounds(xt4_mem):
    with pytest.raises(ValueError):
        xt4_mem.stream_triad_GBs(0)
    with pytest.raises(ValueError):
        xt4_mem.stream_triad_GBs(3)


def test_dgemm_profile_insensitive_to_sharing(xt4_mem):
    peak = 5.2
    sp = xt4_mem.workload_rate_gflops(PROFILES["dgemm"], peak, 1)
    ep = xt4_mem.workload_rate_gflops(PROFILES["dgemm"], peak, 2)
    assert ep / sp > 0.97  # "little degradation" (Fig. 5)
    # Compute roofline minus the small memory-traffic term.
    assert sp == pytest.approx(peak * 0.92, rel=0.02)


def test_fft_profile_modest_sharing_degradation(xt4_mem):
    peak = 5.2
    sp = xt4_mem.workload_rate_gflops(PROFILES["fft"], peak, 1)
    ep = xt4_mem.workload_rate_gflops(PROFILES["fft"], peak, 2)
    # Much gentler than the 50% random-access / STREAM penalty.
    assert 0.75 < ep / sp < 1.0


def test_fft_xt4_improvement_over_xt3(xt3_mem, xt4_mem):
    # Fig. 4: ~25% improvement, memory + clock; the shared-fit model gives ~19%.
    r3 = xt3_mem.workload_rate_gflops(PROFILES["fft"], 4.8, 1)
    r4 = xt4_mem.workload_rate_gflops(PROFILES["fft"], 5.2, 1)
    assert 1.1 < r4 / r3 < 1.3


def test_workload_time_is_flops_over_rate(xt4_mem):
    rate = xt4_mem.workload_rate_gflops(PROFILES["dgemm"], 5.2, 1)
    t = xt4_mem.workload_time_s(2.0e9, PROFILES["dgemm"], 5.2, 1)
    assert t == pytest.approx(2.0 / rate)


def test_negative_flops_rejected(xt4_mem):
    with pytest.raises(ValueError):
        xt4_mem.workload_time_s(-1, PROFILES["dgemm"], 5.2, 1)
    with pytest.raises(ValueError):
        xt4_mem.bytes_time_s(-1, 1)


@given(
    beta=st.floats(min_value=0.0, max_value=10.0),
    eff=st.floats(min_value=0.01, max_value=1.0),
)
def test_rate_monotone_in_active_cores(beta, eff):
    """More active cores can never raise the per-core rate."""
    from repro.machine.specs import WorkloadProfile

    mem = MemoryModel(DDR2_667, cores=2)
    p = WorkloadProfile("w", bytes_per_flop=beta, compute_efficiency=eff)
    r1 = mem.workload_rate_gflops(p, 5.2, 1)
    r2 = mem.workload_rate_gflops(p, 5.2, 2)
    assert r2 <= r1 + 1e-12
    assert r1 <= 5.2 * eff + 1e-12  # never exceeds the compute roofline


@given(beta=st.floats(min_value=0.0, max_value=10.0))
def test_rate_decreases_with_bytes_per_flop(beta):
    from repro.machine.specs import WorkloadProfile

    mem = MemoryModel(DDR2_667, cores=2)
    lo = WorkloadProfile("lo", bytes_per_flop=beta, compute_efficiency=0.5)
    hi = WorkloadProfile("hi", bytes_per_flop=beta + 0.5, compute_efficiency=0.5)
    assert mem.workload_rate_gflops(hi, 5.2, 1) < mem.workload_rate_gflops(
        lo, 5.2, 1
    ) + 1e-12  # simlint: ignore[SL302] — literal rate is the test vector
