#!/usr/bin/env python
"""The §5.2 bidirectional-bandwidth experiments on the DES network.

One-pair and two-pair exchanges across the message-size sweep, for the
single-core XT3, dual-core XT3 and XT4 — the data behind Figures 12-13.
Contention is not asserted anywhere: the halving of two-pair bandwidth
and the latency blow-up emerge from NIC/link resources in the simulator.

Run:  python examples/bidirectional_bandwidth.py
"""

from repro.core.report import render_table
from repro.hpcc.bidirectional import DEFAULT_SIZES, BidirectionalBandwidth
from repro.machine import xt3, xt3_dc, xt4


def main() -> None:
    benches = {
        "XT3-SC": BidirectionalBandwidth(xt3()),
        "XT3-DC": BidirectionalBandwidth(xt3_dc()),
        "XT4": BidirectionalBandwidth(xt4()),
    }
    rows = []
    for size in DEFAULT_SIZES:
        row = {"message bytes": size}
        for label, bench in benches.items():
            row[f"{label} 1-pair"] = round(bench.bandwidth_GBs(size, 1), 3)
        for label in ("XT3-DC", "XT4"):
            row[f"{label} 2-pair"] = round(
                benches[label].bandwidth_GBs(size, 2), 3
            )
        rows.append(row)
    print(
        render_table(rows, title="Bidirectional MPI bandwidth (GB/s per pair)")
    )

    rows = []
    for label in ("XT3-DC", "XT4"):
        b = benches[label]
        l1, l2 = b.latency_us(1), b.latency_us(2)
        rows.append(
            {
                "system": label,
                "1-pair latency us": round(l1, 2),
                "2-pair latency us": round(l2, 2),
                "ratio": round(l2 / l1, 2),
            }
        )
    print(render_table(rows, title="Small-message exchange latency"))
    print(
        "Paper checks: XT4 >= 1.8x XT3-DC above 100 kB; two-pair bandwidth\n"
        "exactly half per pair; two-pair latency over twice one-pair."
    )


if __name__ == "__main__":
    main()
