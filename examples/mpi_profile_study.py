#!/usr/bin/env python
"""Where does MPI time go? Profiling DES runs the way the paper does.

Reproduces the *method* behind the paper's Figure-16 analysis ("70% of
the difference in the physics ... is due to ... the MPI_Alltoallv
calls"): run a CAM-physics-shaped step on the simulated MPI in SN and VN
modes with the mpiP-style profiler, and attribute the mode difference to
operations.

Also writes a Perfetto trace of the VN run (mpi_profile_study.trace.json
by default — open it at https://ui.perfetto.dev): the same attribution,
but as a zoomable timeline with per-rank MPI/compute spans and the
NIC/link/memory-controller counters.

Run:  python examples/mpi_profile_study.py
"""

from typing import Optional

from repro.core.report import render_table
from repro.machine import xt4
from repro.mpi import MPIJob, profiled_job_run
from repro.mpi.profiler import render_timeline
from repro.obs import Tracer, write_chrome_trace


def physics_step(comm):
    """A CAM-physics-shaped iteration: compute + load-balance alltoallv +
    a small allreduce (energy diagnostic) + barrier."""
    for step in range(4):
        yield from comm.compute(2.0e8, profile="dgemm")
        payloads = [b"x" * 20_000 for _ in range(comm.size)]
        yield from comm.alltoallv(payloads)
        yield from comm.allreduce(1.0)
    yield from comm.barrier()
    return comm.wtime()


def main(trace_out: Optional[str] = "mpi_profile_study.trace.json") -> None:
    ntasks = 16
    profiles = {}
    for mode in ("SN", "VN"):
        tracer = None
        if mode == "VN" and trace_out:
            tracer = Tracer(
                meta={"example": "mpi_profile_study", "mode": mode}
            )
        job = MPIJob(xt4(mode), ntasks, tracer=tracer)
        result, prof = profiled_job_run(job, physics_step, trace=True)
        profiles[mode] = (result, prof[0])
        if mode == "VN":
            print(f"\n{mode} execution timeline (first 8 ranks):")
            subset = {r: prof[r] for r in range(min(8, ntasks))}
            print(render_timeline(subset, result.elapsed_s, width=64))
            print()
            if tracer is not None:
                write_chrome_trace(tracer, trace_out)
                print(
                    f"wrote {trace_out} "
                    "(open at https://ui.perfetto.dev)\n"
                )

    rows = []
    for mode, (result, prof) in profiles.items():
        row = {"mode": mode, "total ms": round(result.elapsed_s * 1e3, 3)}
        for op in ("alltoallv", "allreduce", "barrier"):
            row[f"{op} ms"] = round(prof.ops[op].time_s * 1e3, 3)
        row["MPI fraction"] = round(prof.total_time_s / result.elapsed_s, 3)
        rows.append(row)
    print(render_table(rows, title=f"Physics-shaped step, {ntasks} tasks, rank 0"))

    sn_res, sn_prof = profiles["SN"]
    vn_res, vn_prof = profiles["VN"]
    gap = vn_res.elapsed_s - sn_res.elapsed_s
    a2av_gap = vn_prof.ops["alltoallv"].time_s - sn_prof.ops["alltoallv"].time_s
    print(
        f"SN -> VN slowdown: {gap*1e3:.3f} ms, of which MPI_Alltoallv "
        f"accounts for {a2av_gap / gap:.0%} at this 16-task scale.\n"
        "The Alltoallv share grows with task count — each call posts p-1\n"
        "messages — which is why at CAM's 960 tasks the model attributes\n"
        "~90% of the SN/VN physics gap to it (paper Fig. 16: ~70%)."
    )


if __name__ == "__main__":
    main()
