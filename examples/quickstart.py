#!/usr/bin/env python
"""Quickstart: simulate the Cray XT3/XT4 and run HPCC on them.

Builds the three machines of the paper's Table 1, reports the headline
micro-benchmark metrics (Figures 2-7 values), and runs a real message
exchange on the discrete-event MPI to show the two fidelities agree.

Run:  python examples/quickstart.py
"""

from repro.core.report import render_table
from repro.hpcc import HPCCSuite, PingPong
from repro.machine import table1_rows, xt3, xt3_dc, xt4
from repro.mpi import MPIJob


def main() -> None:
    print(render_table(table1_rows(), title="Table 1 — evaluated systems"))

    rows = []
    for machine in (xt3(), xt4("SN"), xt4("VN")):
        suite = HPCCSuite(machine, global_ntasks=1024)
        metrics = suite.all_metrics()
        rows.append(
            {
                "system": str(machine),
                "latency us": round(metrics["pp_latency_min_us"], 2),
                "pp GB/s": round(metrics["pp_bandwidth_GBs"], 2),
                "dgemm GF": round(metrics["dgemm_sp_gflops"], 2),
                "stream GB/s": round(metrics["stream_sp_GBs"], 2),
                "RA gups(EP)": round(metrics["ra_ep_gups"], 4),
                "HPL TF@1024": round(metrics["hpl_tflops"], 2),
            }
        )
    print(render_table(rows, title="HPCC highlights (model fidelity)"))

    # The same latency, measured by actually exchanging messages on the
    # discrete-event network:
    pp = PingPong(xt4("SN"))
    print(
        f"XT4-SN latency — model {pp.latency_us('min'):.2f} us, "
        f"DES measurement {pp.run_des(nbytes=8, iters=10):.2f} us"
    )

    # And a tiny real MPI program, with real payloads:
    def rank_main(comm):
        total = yield from comm.allreduce(comm.rank + 1, op="sum")
        yield from comm.barrier()
        return total

    result = MPIJob(xt4("VN"), ntasks=8).run(rank_main)
    print(
        f"8-rank allreduce on XT4-VN: result={result.returns[0]}, "
        f"simulated time {result.elapsed_s * 1e6:.1f} us"
    )


if __name__ == "__main__":
    main()
