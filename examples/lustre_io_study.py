#!/usr/bin/env python
"""Parallel I/O study on the simulated Lustre filesystem (paper §2, Fig. 1).

Three IOR-style sweeps: aggregate bandwidth vs client count, the effect
of stripe count on a single client's large write, and the single-MDS
metadata bottleneck that the paper warns about.

Run:  python examples/lustre_io_study.py
"""

from repro.core.report import render_table
from repro.lustre import IORBenchmark, LustreClient, LustreConfig, LustreFilesystem
from repro.simengine import Simulator


def stripe_sweep() -> None:
    rows = []
    for count in (1, 2, 4, 8):
        sim = Simulator()
        fs = LustreFilesystem(sim, LustreConfig(num_oss=8, osts_per_oss=4))
        client = LustreClient(fs, 0)
        out = {}

        def writer():
            f = yield from client.create("big", stripe_count=count)
            out["t"] = yield from client.write(f, 0, 256 << 20)

        sim.spawn(writer())
        sim.run()
        rows.append(
            {
                "stripe count": count,
                "256 MiB write (s)": round(out["t"], 3),
                "effective GB/s": round((256 << 20) / out["t"] / 1e9, 3),
            }
        )
    print(render_table(rows, title="Stripe-count effect (one client)"))


def client_sweep() -> None:
    config = LustreConfig(num_oss=8, osts_per_oss=4)
    bench = IORBenchmark(config)
    rows = []
    for clients in (1, 4, 16, 64, 256):
        fpp = bench.run(clients, bytes_per_client=16 << 20)
        ssf = bench.run(clients, 16 << 20, pattern="single-shared-file")
        rows.append(
            {
                "clients": clients,
                "FPP GB/s": round(fpp.aggregate_GBs, 2),
                "FPP metadata s": round(fpp.metadata_s, 4),
                "SSF GB/s": round(ssf.aggregate_GBs, 2),
                "SSF metadata s": round(ssf.metadata_s, 4),
            }
        )
    print(
        render_table(
            rows,
            title=f"IOR write sweep (peak {config.peak_bandwidth_GBs:.1f} GB/s"
            " from 8 OSS)",
        )
    )
    print(
        "File-per-process metadata grows linearly with clients — the\n"
        "single-MDS bottleneck; shared-file writes avoid it."
    )


if __name__ == "__main__":
    stripe_sweep()
    client_sweep()
