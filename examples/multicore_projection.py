#!/usr/bin/env python
"""The paper's future work, run forward: quad-core XT4 projection.

§7 closes with "we plan to investigate the impact of multi-core devices
in the Cray MPP systems". This study applies the calibrated balance
models to a projected quad-core upgrade (Barcelona-class 2.1 GHz cores,
DDR2-800, unchanged SeaStar2 and per-socket memory controller) and asks
the paper's question at four cores: which locality classes keep scaling?

Run:  python examples/multicore_projection.py
"""

from repro.apps.s3d import S3DModel
from repro.core import get_experiment
from repro.core.report import render_ascii_plot, render_table
from repro.hpcc import DGEMMBench, RandomAccessBench, StreamBench
from repro.machine.configs import xt4, xt4_quadcore


def main() -> None:
    result = get_experiment("ext_multicore")()
    print(render_ascii_plot(result, width=48, height=12))

    dual, quad = xt4("VN"), xt4_quadcore("VN")
    rows = []
    for machine, label in ((dual, "XT4 dual-core"), (quad, "XT4 quad-core*")):
        rows.append(
            {
                "socket": label,
                "peak GF/socket": machine.node.processor.peak_gflops_per_socket,
                "dgemm GF/socket": round(
                    machine.node.cores * DGEMMBench(machine).ep_gflops(), 2
                ),
                "stream GB/s/core (EP)": round(StreamBench(machine).ep_GBs(), 2),
                "RA GUPS/core (EP)": round(
                    RandomAccessBench(machine).ep_gups(), 4
                ),
                "S3D us/point (VN)": round(
                    S3DModel(machine, 1024).cost_per_point_us(), 1
                ),
            }
        )
    print(render_table(rows, title="Per-socket balance, dual vs quad (*projection)"))
    print(
        "The projection sharpens §7's conclusion: DGEMM-class work nearly\n"
        "doubles again, but per-core STREAM/RandomAccess halve once more —\n"
        "and S3D's per-task cost rises as four tasks share one controller."
    )


if __name__ == "__main__":
    main()
