#!/usr/bin/env python
"""POP 0.1° scaling study: SN vs VN, phases, and the C-G solver (Figs 17-19).

Also demonstrates the two fidelities working together: the distributed
conjugate-gradient solver actually runs (with real numerics) on the
simulated MPI at small scale, validating the reduction-count claim the
large-scale model relies on.

Run:  python examples/pop_scaling_study.py
"""

import numpy as np

from repro.apps.pop import DistributedCG, POPModel
from repro.apps.pop.barotropic import serial_solve
from repro.core.report import render_table
from repro.machine import xt4
from repro.machine.configs import xt3_xt4_combined


def main() -> None:
    rows = []
    for tasks in (1000, 2500, 5000):
        for mode in ("SN", "VN"):
            m = POPModel(xt4(mode), tasks)
            rows.append(
                {
                    "tasks": tasks,
                    "mode": mode,
                    "baroclinic s/day": round(m.baroclinic_s_per_day(), 1),
                    "barotropic s/day": round(m.barotropic_s_per_day(), 1),
                    "sim years/day": round(m.throughput_years_per_day(), 2),
                }
            )
    comb = xt3_xt4_combined("VN")
    for tasks in (10000, 16000, 22000):
        for solver in ("cg", "cgcg"):
            m = POPModel(comb, tasks, solver=solver)
            rows.append(
                {
                    "tasks": tasks,
                    "mode": f"VN/{solver}",
                    "baroclinic s/day": round(m.baroclinic_s_per_day(), 1),
                    "barotropic s/day": round(m.barotropic_s_per_day(), 1),
                    "sim years/day": round(m.throughput_years_per_day(), 2),
                }
            )
    print(render_table(rows, title="POP 0.1-degree benchmark (model fidelity)"))
    print(
        "Note the barotropic phase flattening and dominating at scale, and\n"
        "the Chronopoulos-Gear (cgcg) recovery — paper Figures 17-19.\n"
    )

    # Small-scale numeric validation of the solver the model describes.
    rng = np.random.default_rng(42)
    b = rng.standard_normal((16, 12))
    ref = serial_solve(b).x
    for variant in ("cg", "cgcg"):
        x, iters, allreduces, job = DistributedCG(
            xt4("VN"), 4, variant=variant
        ).solve(b)
        err = float(np.max(np.abs(x - ref)))
        print(
            f"{variant:4s}: {iters} iterations, {allreduces} fused allreduces, "
            f"max|x - x_serial| = {err:.2e}, simulated solve "
            f"{job.elapsed_s * 1e3:.2f} ms"
        )


if __name__ == "__main__":
    main()
