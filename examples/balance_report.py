#!/usr/bin/env python
"""System-balance report: the paper's thesis, quantified across generations.

"The suitability of next generation high performance computing technology
for petascale simulations will depend on balance among memory, processor,
I/O, and local and global network performance" — §1. This report prints
the balance ratios for the XT3, the dual-core XT3, the XT4, and the
projected quad-core XT4, plus the calibration register behind them.

Run:  python examples/balance_report.py
"""

from repro.core.analysis import balance_table, roofline_rate_gflops
from repro.core.report import render_table
from repro.machine import xt3, xt3_dc, xt4
from repro.machine.calibration import audit, calibrated_count, published_count
from repro.machine.configs import xt4_quadcore


def main() -> None:
    machines = [xt3(), xt3_dc(), xt4(), xt4_quadcore()]
    print(render_table(balance_table(machines), title="System balance"))
    print(
        "Bytes/flop shrinks every generation — each socket upgrade adds\n"
        "flops faster than memory or network bandwidth. The paper's §7\n"
        "conclusion (only high-temporal-locality codes benefit from more\n"
        "cores) is this table, read as a trend.\n"
    )

    rows = []
    for intensity in (0.25, 1.0, 4.0, 16.0, 64.0):
        rows.append(
            {
                "flops/byte": intensity,
                **{
                    m.name: round(roofline_rate_gflops(m, intensity), 2)
                    for m in machines
                },
            }
        )
    print(render_table(rows, title="Roofline: achievable GF/s per core"))

    print(
        render_table(
            audit(),
            title=f"Calibration register ({published_count()} published, "
            f"{calibrated_count()} calibrated constants)",
        )
    )


if __name__ == "__main__":
    main()
