#!/usr/bin/env python
"""What-if study: re-balance the XT4 and rerun the paper's benchmarks.

The library's machines are plain JSON-serializable configurations, so the
question the paper leaves the reader with — which balance fix buys the
most? — can be answered directly: clone the XT4, upgrade one subsystem at
a time (memory bandwidth, NIC latency, injection bandwidth), and push
each variant through the same HPCC models.

Run:  python examples/custom_machine_whatif.py
"""

from repro.core.report import render_table
from repro.hpcc import (
    MPIRandomAccessModel,
    PingPong,
    PTRANSModel,
    RandomAccessBench,
    StreamBench,
)
from repro.machine import xt4
from repro.machine.io import machine_from_dict, machine_to_dict


def variant(name: str, **edits):
    """Clone the VN-mode XT4 with targeted spec edits."""
    data = machine_to_dict(xt4("VN"))
    data["name"] = name
    for path, value in edits.items():
        section, field = path.split(".")
        data["node"][section][field] = value
    return machine_from_dict(data)


def main() -> None:
    machines = [
        xt4("VN"),
        variant("XT4+2x-mem", **{"memory.peak_bw_GBs": 21.2}),
        variant("XT4+half-latency", **{"nic.mpi_latency_us": 2.25,
                                       "nic.vn_latency_add_us": 1.5,
                                       "nic.vn_contention_max_add_us": 5.25}),
        variant("XT4+2x-links", **{"nic.sustained_link_bw_GBs": 4.8}),
    ]
    rows = []
    for m in machines:
        rows.append(
            {
                "machine": m.name,
                "stream EP GB/s": round(StreamBench(m).ep_GBs(), 2),
                "RA EP gups": round(RandomAccessBench(m).ep_gups(), 4),
                "pp lat us": round(PingPong(m).latency_us("min"), 2),
                "MPI-RA gups@1k": round(
                    MPIRandomAccessModel(m, 1024).gups(), 3
                ),
                "PTRANS GB/s@1k": round(PTRANSModel(m, 1024).gbs(), 0),
            }
        )
    print(render_table(rows, title="One-subsystem upgrades of the VN-mode XT4"))
    print(
        "Reading: doubling memory bandwidth fixes STREAM/EP but not the\n"
        "latency-bound MPI-RA; halving NIC latency fixes MPI-RA but nothing\n"
        "else; only the link upgrade moves PTRANS. Balance is the point —\n"
        "no single subsystem upgrade lifts every column (paper §1/§7)."
    )


if __name__ == "__main__":
    main()
