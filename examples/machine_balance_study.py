#!/usr/bin/env python
"""The paper's §7 balance argument, reproduced as a locality sweep.

"Additional cores provide a performance improvement for algorithms that
exhibit high degrees of temporal locality ... but they provide little
benefit for codes which exhibit poor temporal locality."

We sweep a synthetic kernel's memory intensity (bytes per flop) and
report the EP/SP ratio — the benefit of the second core — on the XT4,
plus where each HPCC kernel sits on that curve.

Run:  python examples/machine_balance_study.py
"""

from repro.core.report import render_table
from repro.machine import MemoryModel, xt4
from repro.machine.configs import DDR2_667, PROFILES
from repro.machine.specs import WorkloadProfile


def main() -> None:
    mem = MemoryModel(DDR2_667, cores=2)
    peak = xt4().node.processor.peak_gflops_per_core

    rows = []
    for beta in (0.0, 0.05, 0.2, 0.5, 1.0, 2.0, 4.0, 8.0):
        profile = WorkloadProfile(f"beta={beta}", beta, 0.25)
        sp = mem.workload_rate_gflops(profile, peak, 1)
        ep = mem.workload_rate_gflops(profile, peak, 2)
        rows.append(
            {
                "bytes/flop": beta,
                "SP GF/core": round(sp, 3),
                "EP GF/core": round(ep, 3),
                "EP/SP": round(ep / sp, 3),
                "socket speedup from 2nd core": round(2 * ep / sp, 2),
            }
        )
    print(
        render_table(
            rows, title="Second-core benefit vs memory intensity (XT4 socket)"
        )
    )

    rows = []
    for name in ("dgemm", "hpl", "fft"):
        p = PROFILES[name]
        sp = mem.workload_rate_gflops(p, peak, 1)
        ep = mem.workload_rate_gflops(p, peak, 2)
        rows.append(
            {
                "kernel": name,
                "bytes/flop": p.bytes_per_flop,
                "EP/SP": round(ep / sp, 3),
            }
        )
    rows.append(
        {
            "kernel": "stream (pure bandwidth)",
            "bytes/flop": "inf",
            "EP/SP": round(
                mem.stream_triad_GBs(2) / mem.stream_triad_GBs(1), 3
            ),
        }
    )
    rows.append(
        {
            "kernel": "random access (latency)",
            "bytes/flop": "-",
            "EP/SP": round(
                mem.random_access_gups(2) / mem.random_access_gups(1), 3
            ),
        }
    )
    print(render_table(rows, title="Where the HPCC kernels sit"))
    print(
        "Reading: DGEMM/HPL keep ~100% per core with both cores busy;\n"
        "STREAM and RandomAccess halve — exactly the paper's Figures 4-7."
    )


if __name__ == "__main__":
    main()
