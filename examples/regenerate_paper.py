#!/usr/bin/env python
"""Regenerate every table and figure of the paper and validate the shapes.

Writes one CSV per artifact into ``results/`` and prints a pass/fail
summary of each artifact's shape checks (the paper's qualitative claims).

Run:  python examples/regenerate_paper.py [output_dir]
"""

import importlib
import pathlib
import sys

from repro.core import all_experiments, get_experiment
from repro.core.report import render_csv, render_result


def main(out_dir: str = "results") -> int:
    out = pathlib.Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    failures = 0
    for exp_id in all_experiments():
        driver = get_experiment(exp_id)
        result = driver()
        (out / f"{exp_id}.csv").write_text(render_csv(result))
        (out / f"{exp_id}.txt").write_text(render_result(result))
        module = importlib.import_module(driver.__module__)
        check = module.shape_checks(result)
        n_pass = sum(1 for c in check.checks if c.passed)
        status = "PASS" if check.passed else "FAIL"
        print(f"[{status}] {exp_id:10s} {n_pass}/{len(check.checks)} checks — {result.title}")
        if not check.passed:
            failures += 1
            for f in check.failures:
                print(f"        {f}")
    print(f"\nwrote {len(all_experiments())} artifacts to {out}/")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1] if len(sys.argv) > 1 else "results"))
